package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/sim"
	"branchreorder/internal/workload"
)

// Key identifies one build+measure job: a workload compiled under one
// full pipeline configuration. pipeline.Options is comparable, so ablation
// variants and the Section 10 extension get distinct cache slots while the
// standard per-set builds are shared by every table and figure.
type Key struct {
	Workload string
	Opts     pipeline.Options
}

// BaseOptions is the standard evaluation configuration for a heuristic
// set — what every table and figure of the paper's evaluation uses.
func BaseOptions(set lower.HeuristicSet) pipeline.Options {
	return pipeline.Options{Switch: set, Optimize: true}
}

// EngineStats summarizes an engine's cache behaviour across its tiers
// (memo → disk → remote). It is the serializable store.TierStats, so
// shard exports carry it and merged runs can total every shard's cache
// activity.
type EngineStats = store.TierStats

// Engine runs build+measure jobs on a bounded worker pool and memoizes
// every result by Key, so regenerating all of Tables 4-8, Figures 11-13
// and the ablation study compiles and simulates each configuration
// exactly once. An Engine is safe for concurrent use.
type Engine struct {
	jobs     int
	progress io.Writer
	sem      chan struct{}
	disk     *store.Store     // optional second cache tier; nil means memory-only
	remote   *storenet.Client // optional third tier: a fleet-shared brstored server

	// Measure configures the measurement engine for every fresh build
	// (e.g. superinstruction fusion off, for `brbench -no-fuse`). Set it
	// before the first Get; measured results are identical for any
	// value, so cached entries stay valid across settings.
	Measure sim.Options

	// stages memoizes the build pipeline's cacheable stages (frontend,
	// detect+train) across jobs, so the ablation grid performs one
	// frontend and one training run per (workload, set, detection
	// config) instead of one per variant. When a disk or remote tier is
	// attached, stage-2 products also persist as content-addressed
	// profile records, letting warm caches skip training runs even for
	// Transform combinations that miss the whole-build tier.
	stages *pipeline.StageCache

	mu    sync.Mutex // guards cache, stats, and progress writes
	cache map[Key]*entry
	stats EngineStats
}

// entry is one memoized job. done is closed exactly once, after run/err
// are final; waiters block on it rather than on the worker pool.
type entry struct {
	done chan struct{}
	run  *ProgramRun
	err  error
}

// NewEngine returns an engine running at most jobs builds concurrently
// (GOMAXPROCS when jobs <= 0). Progress lines go to progress when
// non-nil; their order depends on scheduling, so pipe them to a log
// destination, not into table output.
func NewEngine(jobs int, progress io.Writer) *Engine {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		jobs:     jobs,
		progress: progress,
		sem:      make(chan struct{}, jobs),
		cache:    map[Key]*entry{},
		stages:   pipeline.NewStageCache(0),
	}
	e.stages.Profiles = profileTier{e}
	return e
}

// StageCache exposes the engine's build-stage cache so co-operating
// experiments (e.g. pipeline.AutoBuildWith) can share its frontends and
// training runs.
func (e *Engine) StageCache() *pipeline.StageCache { return e.stages }

// SetMeasure configures the measurement options and steers the stage
// cache's training runs onto the same execution engine. Call it before
// the first Get. Results and cache entries are identical for any value;
// only wall-clock and the engine-descriptive counters change.
func (e *Engine) SetMeasure(mo sim.Options) {
	e.Measure = mo
	e.stages.Exec = mo.Engine
}

// Jobs reports the worker-pool bound.
func (e *Engine) Jobs() int { return e.jobs }

// UseStore attaches a disk store as a second cache tier behind the
// in-memory memo: every memo miss probes the store before building, and
// every fresh build is written back. Attach it before the first Get.
func (e *Engine) UseStore(s *store.Store) { e.disk = s }

// UseRemote attaches a fleet-shared network store as a third cache tier
// behind the disk store: probed only when memo and disk both miss, and
// written back after every fresh build. Remote hits are written through
// to the disk tier (when one is attached) so the next run on this
// machine warms locally. Remote failures never fail a run — the client
// degrades to the local tiers and the fallback is counted. Attach it
// before the first Get.
func (e *Engine) UseRemote(c *storenet.Client) { e.remote = c }

// Seed installs an already-measured run — typically loaded from an
// exported shard — into the memo cache, so a later Get for the same
// (workload, options) key is a cache hit instead of a rebuild. An
// existing entry wins; seeding never overwrites.
func (e *Engine) Seed(r *ProgramRun) {
	key := Key{Workload: r.Workload.Name, Opts: r.Opts}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cache[key]; ok {
		return
	}
	done := make(chan struct{})
	close(done)
	e.cache[key] = &entry{done: done, run: r}
	e.stats.Seeded++
}

// Stats returns a snapshot of the cache counters, the per-stage
// counters of the staged build pipeline included.
func (e *Engine) Stats() EngineStats {
	ss := e.stages.Stats()
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.FrontendRuns = ss.FrontendRuns
	s.FrontendHits = ss.FrontendHits
	s.TrainRuns = ss.TrainRuns
	s.TrainHits = ss.TrainHits
	s.SampledTrainRuns = ss.SampledTrainRuns
	s.ProfileMergeHits = ss.ProfileMergeHits
	if e.stats.BuildSeconds != nil {
		s.BuildSeconds = make(map[string]float64, len(e.stats.BuildSeconds))
		for w, sec := range e.stats.BuildSeconds {
			s.BuildSeconds[w] = sec
		}
	}
	return s
}

func (e *Engine) logf(format string, args ...interface{}) {
	if e.progress == nil {
		return
	}
	e.mu.Lock()
	fmt.Fprintf(e.progress, format, args...)
	e.mu.Unlock()
}

// Get returns the memoized run for (w, opts), building and measuring it
// if no other caller has. Concurrent calls for the same key share one
// build; the loser waits for the winner rather than duplicating work.
func (e *Engine) Get(ctx context.Context, w workload.Workload, opts pipeline.Options) (*ProgramRun, error) {
	key := Key{Workload: w.Name, Opts: opts}
	e.mu.Lock()
	if ent, ok := e.cache[key]; ok {
		e.stats.Hits++
		e.mu.Unlock()
		select {
		case <-ent.done:
			return ent.run, ent.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ent := &entry{done: make(chan struct{})}
	e.cache[key] = ent
	e.mu.Unlock()

	// A cancellation is not a result: evict the entry so a later Get
	// with a live context rebuilds instead of replaying the stale error.
	defer func() {
		if ent.err != nil && (errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded)) {
			e.mu.Lock()
			if e.cache[key] == ent {
				delete(e.cache, key)
			}
			e.mu.Unlock()
		}
		close(ent.done)
	}()

	// Disk tier: a stored result skips the build entirely (and the
	// worker pool — reading an entry is cheap). Anything unusable is a
	// miss; Invalid is counted separately so invalidations are visible.
	var fp string
	if e.disk != nil || e.remote != nil {
		fp = store.Fingerprint(w.Source, TrainInput(w, opts), w.Test(), opts)
	}
	if e.disk != nil {
		rec, st := e.disk.Get(fp)
		if st == store.Hit {
			run, err := RunFromRecord(rec, w)
			if err == nil {
				e.mu.Lock()
				e.stats.DiskHits++
				e.mu.Unlock()
				e.logf("disk hit %-8s heuristic set %v%s\n", w.Name, opts.Switch, optsSuffix(opts))
				ent.run = run
				return ent.run, nil
			}
			// Decoded but would not reconstitute: as good as corrupt.
			st = store.Invalid
		}
		e.mu.Lock()
		if st == store.Invalid {
			e.stats.DiskInvalid++
		} else {
			e.stats.DiskMisses++
		}
		e.mu.Unlock()
	}

	// Remote tier: with both local tiers cold, ask the fleet's shared
	// store before paying for a build. A hit is written through to the
	// disk tier so this machine serves it locally next time. Any remote
	// failure is absorbed as a fallback — the build below still runs.
	if e.remote != nil {
		rec, out := e.remote.Get(ctx, fp)
		if out == storenet.Hit {
			if run, rerr := RunFromRecord(rec, w); rerr == nil {
				e.mu.Lock()
				e.stats.RemoteHits++
				e.mu.Unlock()
				e.logf("remote hit %-8s heuristic set %v%s\n", w.Name, opts.Switch, optsSuffix(opts))
				if e.disk != nil {
					if perr := e.disk.Put(fp, rec); perr != nil {
						e.logf("store write failed: %v\n", perr)
					}
				}
				ent.run = run
				return ent.run, nil
			}
			// The server validated the entry yet it would not
			// reconstitute here: degrade, don't trust it.
			out = storenet.Fallback
		}
		e.mu.Lock()
		if out == storenet.Miss {
			e.stats.RemoteMisses++
		} else {
			e.stats.RemoteFallbacks++
		}
		e.mu.Unlock()
	}

	select {
	case e.sem <- struct{}{}:
		defer func() { <-e.sem }()
	case <-ctx.Done():
		ent.err = ctx.Err()
		return nil, ent.err
	}
	if err := ctx.Err(); err != nil {
		ent.err = err
		return nil, err
	}
	e.mu.Lock()
	e.stats.Builds++
	e.mu.Unlock()
	e.logf("building %-8s heuristic set %v%s\n", w.Name, opts.Switch, optsSuffix(opts))
	start := time.Now()
	ent.run, ent.err = RunStagedWith(e.stages, w, opts, e.Measure)
	if ent.err == nil {
		elapsed := time.Since(start).Seconds()
		e.mu.Lock()
		if e.stats.BuildSeconds == nil {
			e.stats.BuildSeconds = map[string]float64{}
		}
		e.stats.BuildSeconds[w.Name] += elapsed
		// Fusion counters follow the BuildSeconds discipline: fresh
		// builds only, so cache hits (whose records may predate the
		// fusion field) never skew the summary.
		e.stats.FusedSites += ent.run.Base.Fusion.Fused + ent.run.Reord.Fusion.Fused
		e.stats.FusedOps += ent.run.Base.Fusion.Inside + ent.run.Reord.Fusion.Inside
		e.stats.DecodedOps += ent.run.Base.Fusion.Ops + ent.run.Reord.Fusion.Ops
		e.stats.CompiledFuncs += ent.run.Base.Compile.CompiledFuncs + ent.run.Reord.Compile.CompiledFuncs
		e.stats.ClosureBlocks += ent.run.Base.Compile.ClosureBlocks + ent.run.Reord.Compile.ClosureBlocks
		e.stats.ClosureFallbacks += ent.run.Base.Compile.Fallbacks + ent.run.Reord.Compile.Fallbacks
		e.mu.Unlock()
	}
	if ent.err == nil && (e.disk != nil || e.remote != nil) {
		// A write failure costs only the cache entry, not the run.
		rec := ent.run.Record()
		if e.disk != nil {
			if perr := e.disk.Put(fp, rec); perr != nil {
				e.logf("store write failed: %v\n", perr)
			}
		}
		if e.remote != nil {
			if perr := e.remote.Put(ctx, fp, rec); perr != nil {
				e.mu.Lock()
				e.stats.RemoteFallbacks++
				e.mu.Unlock()
			} else {
				e.mu.Lock()
				e.stats.RemotePuts++
				e.mu.Unlock()
			}
		}
	}
	return ent.run, ent.err
}

// profileTier adapts the engine's disk and remote tiers into the stage
// cache's persistent store for stage-2 training products. Remote hits
// are written through to the disk tier, and fresh products go to both —
// the same discipline as whole-build records. All remote operations are
// best-effort: a failure just means the training run happens here.
type profileTier struct{ e *Engine }

func (p profileTier) GetProfile(src string, train []byte, fo pipeline.FrontendOptions, d pipeline.DetectOptions) (*pipeline.TrainProduct, bool) {
	e := p.e
	if e.disk == nil && e.remote == nil {
		return nil, false
	}
	fp := store.ProfileFingerprint(src, train, fo, d)
	if e.disk != nil {
		if rec, st := e.disk.GetProfile(fp); st == store.Hit {
			e.mu.Lock()
			e.stats.ProfileHits++
			e.mu.Unlock()
			return rec.Train(), true
		}
	}
	if e.remote != nil {
		if rec, out := e.remote.GetProfile(context.Background(), fp); out == storenet.Hit {
			e.mu.Lock()
			e.stats.ProfileHits++
			e.mu.Unlock()
			if e.disk != nil {
				if perr := e.disk.PutProfile(fp, rec); perr != nil {
					e.logf("profile store write failed: %v\n", perr)
				}
			}
			return rec.Train(), true
		}
	}
	return nil, false
}

func (p profileTier) PutProfile(src string, train []byte, fo pipeline.FrontendOptions, d pipeline.DetectOptions, tp *pipeline.TrainProduct) {
	e := p.e
	if e.disk == nil && e.remote == nil {
		return
	}
	fp := store.ProfileFingerprint(src, train, fo, d)
	rec := store.FromTrain(tp)
	stored := false
	if e.disk != nil {
		if perr := e.disk.PutProfile(fp, rec); perr != nil {
			e.logf("profile store write failed: %v\n", perr)
		} else {
			stored = true
		}
	}
	if e.remote != nil {
		if perr := e.remote.PutProfile(context.Background(), fp, rec); perr == nil {
			stored = true
		}
	}
	if stored {
		e.mu.Lock()
		e.stats.ProfilePuts++
		e.mu.Unlock()
	}
}

// MergeProfile folds a just-trained product into the persistent
// merged-profile record for (src, fo, d) and returns the fold — the
// decay-weighted sum of this and every previously accumulated training
// input. The merged fingerprint deliberately ignores the training input
// and the drift choice, so successive runs over different inputs pile
// into one record. Reads prefer the disk tier; the updated record is
// written back to both tiers best-effort. A nil return means no
// persistent tier is attached and the caller should use the solo
// product; reused reports whether prior contributions were folded in.
func (p profileTier) MergeProfile(src string, train []byte, fo pipeline.FrontendOptions, d pipeline.DetectOptions, tp *pipeline.TrainProduct) (*pipeline.TrainProduct, bool) {
	e := p.e
	if e.disk == nil && e.remote == nil {
		return nil, false
	}
	fp := store.MergedFingerprint(src, fo, d)
	var rec *store.MergedRecord
	if e.disk != nil {
		if r, st := e.disk.GetMerged(fp); st == store.Hit {
			rec = r
		}
	}
	if rec == nil && e.remote != nil {
		if r, out := e.remote.GetMerged(context.Background(), fp); out == storenet.Hit {
			rec = r
			if e.disk != nil {
				if perr := e.disk.PutMerged(fp, r); perr != nil {
					e.logf("profile store write failed: %v\n", perr)
				}
			}
		}
	}
	reused := rec != nil && len(rec.Contribs) > 0
	if rec == nil {
		rec = &store.MergedRecord{HalfLife: d.Profile.EffectiveHalfLife()}
	}
	rec.Merge(store.TrainDigest(train), store.FromTrain(tp))
	stored := false
	if e.disk != nil {
		if perr := e.disk.PutMerged(fp, rec); perr != nil {
			e.logf("profile store write failed: %v\n", perr)
		} else {
			stored = true
		}
	}
	if e.remote != nil {
		if perr := e.remote.PutMerged(context.Background(), fp, rec); perr == nil {
			stored = true
		}
	}
	if stored {
		e.mu.Lock()
		e.stats.ProfilePuts++
		e.mu.Unlock()
	}
	return rec.Fold(), reused
}

// optsSuffix labels non-default configurations in progress output.
func optsSuffix(o pipeline.Options) string {
	var parts []string
	if o.CommonSuccessor {
		parts = append(parts, "+common-succ")
	}
	if o.Transform.NoBoundOrder {
		parts = append(parts, "no-bound-order")
	}
	if o.Transform.NoCmpReuse {
		parts = append(parts, "no-cmp-reuse")
	}
	if o.Transform.NoTailDup {
		parts = append(parts, "no-tail-dup")
	}
	if len(parts) == 0 {
		return ""
	}
	s := " ["
	for i, p := range parts {
		if i > 0 {
			s += ","
		}
		s += p
	}
	return s + "]"
}

// gather runs fn for every index of an n-element job list on the engine's
// pool and waits for all of them. The first non-cancellation error wins
// and cancels the remaining jobs; results are for the caller to place by
// index, so aggregation order never depends on completion order.
func (e *Engine) gather(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fn(ctx, i); err != nil {
				mu.Lock()
				if firstErr == nil && !errors.Is(err, context.Canceled) {
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Suite builds and measures every workload under every heuristic set.
func (e *Engine) Suite(ctx context.Context) (*Suite, error) {
	return e.SuiteOf(ctx, workload.All())
}

// SuiteOf builds and measures the given workloads under every heuristic
// set. Results are ordered exactly as ws regardless of which build
// finishes first, so rendered tables are byte-identical across -j values.
func (e *Engine) SuiteOf(ctx context.Context, ws []workload.Workload) (*Suite, error) {
	return e.SuiteOfOpts(ctx, ws, nil)
}

// SuiteOfOpts is SuiteOf with every job's options passed through mod
// (when non-nil), so a cross-cutting configuration — profile sampling or
// merging, say — applies to the whole evaluation matrix without
// enumerating jobs by hand.
func (e *Engine) SuiteOfOpts(ctx context.Context, ws []workload.Workload, mod func(pipeline.Options) pipeline.Options) (*Suite, error) {
	jobs := SuiteJobs(ws)
	if mod != nil {
		for i := range jobs {
			jobs[i].Opts = mod(jobs[i].Opts)
		}
	}
	runs, err := e.RunJobs(ctx, jobs)
	if err != nil {
		return nil, err
	}
	s := &Suite{Runs: map[lower.HeuristicSet][]*ProgramRun{}}
	for si, set := range Sets() {
		s.Runs[set] = runs[si*len(ws) : (si+1)*len(ws)]
	}
	return s, nil
}
