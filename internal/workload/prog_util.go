package workload

// Utility workloads: awk, grep, join, nroff, sdiff, sed, sort.

func grepWorkload() Workload {
	return Workload{
		Name: "grep",
		Desc: "Searches a File for a String or Regular Expression",
		Source: `
// grep with a small real regex engine in the style of the original
// Thompson/Pike matcher: literals, '.', '*' closures, character classes
// [a-z], and the '^' and '$' anchors. The pattern is fixed ("t.*[mnr]"),
// compiled into a token array at startup, and matched against every
// input line; the matcher's inner loops are dense with the range
// conditions the transformation targets.
int pat[16] = "t.*[mnr]";
int tokOp[16];   // 1=literal 2=dot 3=class 4=end
int tokArg[16];  // literal char, or class index
int tokStar[16]; // closure flag
int clsLo[16]; int clsHi[16]; int clsOf[16]; // class ranges: [of..of+n)
int ntok = 0; int ncls = 0;
int line[256];
int matches = 0; int lines = 0;
int anchorBOL = 0; int anchorEOL = 0;

int compile() {
	int i = 0, t = 0, c;
	if (pat[0] == '^') {
		anchorBOL = 1;
		i = 1;
	}
	while (pat[i] != 0) {
		c = pat[i];
		if (c == '$' && pat[i + 1] == 0) {
			anchorEOL = 1;
			break;
		}
		if (c == '.') {
			tokOp[t] = 2;
			i = i + 1;
		} else if (c == '[') {
			tokOp[t] = 3;
			tokArg[t] = ncls;
			clsOf[ncls] = 0;
			i = i + 1;
			// A single range per class is enough for the workload.
			clsLo[ncls] = pat[i];
			i = i + 2;	// skip '-'
			clsHi[ncls] = pat[i];
			i = i + 2;	// skip ']'
			ncls = ncls + 1;
		} else {
			tokOp[t] = 1;
			tokArg[t] = c;
			i = i + 1;
		}
		if (pat[i] == '*') {
			tokStar[t] = 1;
			i = i + 1;
		} else
			tokStar[t] = 0;
		t = t + 1;
	}
	tokOp[t] = 4;
	ntok = t;
	return t;
}

int single(int t, int c) {
	// Does token t match character c?
	int op = tokOp[t];
	if (op == 2)
		return 1;
	if (op == 1) {
		if (tokArg[t] == c)
			return 1;
		return 0;
	}
	if (op == 3) {
		if (c >= clsLo[tokArg[t]] && c <= clsHi[tokArg[t]])
			return 1;
		return 0;
	}
	return 0;
}

int matchHere(int t, int pos, int len) {
	while (1) {
		if (tokOp[t] == 4) {
			if (anchorEOL == 1) {
				if (pos == len)
					return 1;
				return 0;
			}
			return 1;
		}
		if (tokStar[t] == 1) {
			// Closure: try the shortest match first, then extend.
			int p = pos;
			while (1) {
				if (matchHere(t + 1, p, len) == 1)
					return 1;
				if (p >= len)
					return 0;
				if (single(t, line[p]) == 0)
					return 0;
				p = p + 1;
			}
		}
		if (pos >= len)
			return 0;
		if (single(t, line[pos]) == 0)
			return 0;
		t = t + 1;
		pos = pos + 1;
	}
	return 0;
}

int matchLine(int len) {
	int start;
	if (anchorBOL == 1)
		return matchHere(0, 0, len);
	for (start = 0; start <= len; start++) {
		if (matchHere(0, start, len) == 1)
			return 1;
	}
	return 0;
}

int main() {
	int c, n = 0, i;
	compile();
	while (1) {
		c = getchar();
		if (c == '\n' || c == EOF) {
			lines = lines + 1;
			if (matchLine(n) == 1) {
				for (i = 0; i < n; i++)
					putchar(line[i]);
				putchar('\n');
				matches = matches + 1;
			}
			n = 0;
			if (c == EOF)
				break;
			continue;
		}
		if (n < 256) {
			line[n] = c;
			n = n + 1;
		}
	}
	putint(matches); putchar(' '); putint(lines); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return textInput(2121, 5000, 25) },
		Test:  func() []byte { return textInput(2222, 8000, 25) },
	}
}

func sortWorkload() Workload {
	return Workload{
		Name: "sort",
		Desc: "Sorts and Collates Lines",
		Source: `
// sort: read lines, insertion-sort them with a dictionary-order compare
// that skips non-alphanumerics, and print them. Nearly every dynamic
// instruction sits inside the comparison's range-condition chains, which
// is why the paper's sort improved the most.
int text[20000];
int start[600];
int len[600];
int order[600];
int nlines = 0;
int classify(int c) {
	// Dictionary order, written in the "natural" untuned order real
	// sources use: special cases first, the common letters last — the
	// shape the paper's transformation exploits.
	if (c == ' ' || c == '\t')
		return 1;
	if (c >= '0' && c <= '9')
		return c;
	if (c >= 'A' && c <= 'Z')
		return c + 32;
	if (c >= 'a' && c <= 'z')
		return c;
	return 0;	// skip everything else
}
int cmp(int a, int b) {
	int i = 0, j = 0, ca, cb;
	while (1) {
		ca = 0;
		while (i < len[a]) {
			ca = classify(text[start[a] + i]);
			i = i + 1;
			if (ca != 0)
				break;
			ca = 0;
		}
		cb = 0;
		while (j < len[b]) {
			cb = classify(text[start[b] + j]);
			j = j + 1;
			if (cb != 0)
				break;
			cb = 0;
		}
		if (ca == 0 && cb == 0)
			return 0;
		if (ca < cb)
			return -1;
		if (ca > cb)
			return 1;
	}
	return 0;
}
int main() {
	int c;
	int pos = 0;
	int i, j, k;
	start[0] = 0;
	while ((c = getchar()) != EOF) {
		if (c == '\n') {
			if (nlines < 599) {
				len[nlines] = pos - start[nlines];
				nlines = nlines + 1;
				start[nlines] = pos;
			}
			continue;
		}
		if (pos < 20000) {
			text[pos] = c;
			pos = pos + 1;
		}
	}
	for (i = 0; i < nlines; i++)
		order[i] = i;
	// Insertion sort.
	for (i = 1; i < nlines; i++) {
		k = order[i];
		j = i - 1;
		while (j >= 0 && cmp(order[j], k) > 0) {
			order[j + 1] = order[j];
			j = j - 1;
		}
		order[j + 1] = k;
	}
	for (i = 0; i < nlines; i++) {
		for (j = 0; j < len[order[i]]; j++)
			putchar(text[start[order[i]] + j]);
		putchar('\n');
	}
	return 0;
}`,
		Train: func() []byte { return textInput(2323, 2500, 25) },
		Test:  func() []byte { return textInput(2424, 3600, 25) },
	}
}

func joinWorkload() Workload {
	return Workload{
		Name: "join",
		Desc: "Relational Database Operator",
		Source: `
// join: merge two key-sorted relations on their first field. The merge
// loop's three-way key comparison and the digit parsing are the branch
// sequences.
int keyA[800]; int valA[800];
int keyB[800]; int valB[800];
int joined = 0;
int readNum() {
	// Skip blanks, parse a nonnegative integer; -1 at end of input.
	int c, v = 0, any = 0;
	while (1) {
		c = getchar();
		if (c == ' ' || c == '\t' || c == '\n') {
			if (any == 1)
				return v;
			continue;
		}
		if (c == EOF) {
			if (any == 1)
				return v;
			return -1;
		}
		if (c >= '0' && c <= '9') {
			v = v * 10 + c - '0';
			any = 1;
		}
	}
	return -1;
}
int main() {
	int na, nb, i, a, b;
	na = readNum();
	if (na > 800)
		na = 800;
	for (i = 0; i < na; i++) {
		keyA[i] = readNum();
		valA[i] = readNum();
	}
	nb = readNum();
	if (nb > 800)
		nb = 800;
	for (i = 0; i < nb; i++) {
		keyB[i] = readNum();
		valB[i] = readNum();
	}
	a = 0; b = 0;
	while (a < na && b < nb) {
		if (keyA[a] < keyB[b])
			a = a + 1;
		else if (keyA[a] > keyB[b])
			b = b + 1;
		else {
			putint(keyA[a]); putchar(' ');
			putint(valA[a]); putchar(' ');
			putint(valB[b]); putchar('\n');
			joined = joined + 1;
			a = a + 1;
			b = b + 1;
		}
	}
	putint(joined); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return joinInput(2525, 500, 420) },
		Test:  func() []byte { return joinInput(2626, 760, 700) },
	}
}

func sdiffWorkload() Workload {
	return Workload{
		Name: "sdiff",
		Desc: "Displays Files Side-by-Side",
		Source: `
// sdiff: the input holds two sections separated by a '%' line; compare
// them line by line and print each pair with a gutter marker.
int text[24000];
int start[800]; int len[800];
int nlines = 0; int sep = -1;
int main() {
	int c, pos = 0, i, j, a, b, same, width, diffs = 0;
	start[0] = 0;
	while ((c = getchar()) != EOF) {
		if (c == '\n') {
			if (nlines < 799) {
				len[nlines] = pos - start[nlines];
				if (len[nlines] == 1 && text[start[nlines]] == '%' && sep < 0)
					sep = nlines;
				nlines = nlines + 1;
				start[nlines] = pos;
			}
			continue;
		}
		if (pos < 24000) {
			text[pos] = c;
			pos = pos + 1;
		}
	}
	if (sep < 0)
		sep = nlines;
	a = 0;
	b = sep + 1;
	while (a < sep || b < nlines) {
		same = 0;
		if (a < sep && b < nlines && len[a] == len[b]) {
			same = 1;
			for (i = 0; i < len[a]; i++) {
				if (text[start[a] + i] != text[start[b] + i])
					same = 0;
			}
		}
		width = 0;
		if (a < sep) {
			for (i = 0; i < len[a] && i < 30; i++) {
				putchar(text[start[a] + i]);
				width = width + 1;
			}
		}
		while (width < 32) {
			putchar(' ');
			width = width + 1;
		}
		if (same == 1)
			putchar(' ');
		else {
			putchar('|');
			diffs = diffs + 1;
		}
		putchar(' ');
		if (b < nlines) {
			for (j = 0; j < len[b] && j < 30; j++)
				putchar(text[start[b] + j]);
		}
		putchar('\n');
		if (a < sep) a = a + 1;
		if (b < nlines) b = b + 1;
	}
	putint(diffs); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return sdiffInput(2727, 260) },
		Test:  func() []byte { return sdiffInput(2828, 380) },
	}
}

func sedWorkload() Workload {
	return Workload{
		Name: "sed",
		Desc: "Stream Editor",
		Source: `
// sed with the fixed script "/qz/d; s/e/E/; y/-/_/": delete lines
// containing "qz", capitalize the first 'e', transliterate hyphens.
int line[256];
int deleted = 0, subs = 0;
int main() {
	int c, n = 0, i, del, didSub;
	while (1) {
		c = getchar();
		if (c == '\n' || c == EOF) {
			del = 0;
			for (i = 0; i + 1 < n; i++) {
				if (line[i] == 'q' && line[i + 1] == 'z')
					del = 1;
			}
			if (del == 1)
				deleted = deleted + 1;
			else {
				didSub = 0;
				for (i = 0; i < n; i++) {
					int ch = line[i];
					if (ch == 'e' && didSub == 0) {
						ch = 'E';
						didSub = 1;
						subs = subs + 1;
					} else if (ch == '-')
						ch = '_';
					putchar(ch);
				}
				putchar('\n');
			}
			n = 0;
			if (c == EOF)
				break;
			continue;
		}
		if (n < 256) {
			line[n] = c;
			n = n + 1;
		}
	}
	putint(deleted); putchar(' ');
	putint(subs); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return textInput(2929, 5000, 40) },
		Test:  func() []byte { return textInput(3030, 8000, 40) },
	}
}

func nroffWorkload() Workload {
	return Workload{
		Name: "nroff",
		Desc: "Text Formatter",
		Source: `
// nroff: honour a handful of dot requests (dispatched by a switch),
// fill words into 60-column lines, and handle font escapes.
int word[64];
int main() {
	int c, n = 0, col = 0, atBOL = 1, fill = 1, i;
	while (1) {
		c = getchar();
		if (atBOL == 1 && c == '.') {
			// Request line: dispatch on the first letter.
			c = getchar();
			switch (c) {
			case 'b':	// .br
				if (col > 0) { putchar('\n'); col = 0; }
				break;
			case 's':	// .sp
				if (col > 0) { putchar('\n'); col = 0; }
				putchar('\n');
				break;
			case 'f':	// .fi
				fill = 1;
				break;
			case 'n':	// .nf
				fill = 0;
				if (col > 0) { putchar('\n'); col = 0; }
				break;
			case 'p':	// .pp
				if (col > 0) { putchar('\n'); col = 0; }
				putchar(' '); putchar(' ');
				col = 2;
				break;
			default:
				break;
			}
			while (c != '\n' && c != EOF)
				c = getchar();
			if (c == EOF)
				break;
			continue;
		}
		if (c == '\\') {
			c = getchar();	// swallow font escapes
			if (c == EOF)
				break;
			continue;
		}
		if (c == ' ' || c == '\t' || c == '\n' || c == EOF) {
			if (n > 0) {
				if (fill == 1 && col + n + 1 > 60) {
					putchar('\n');
					col = 0;
				}
				if (col > 0) {
					putchar(' ');
					col = col + 1;
				}
				for (i = 0; i < n; i++)
					putchar(word[i]);
				col = col + n;
				n = 0;
			}
			if (fill == 0 && c == '\n') {
				putchar('\n');
				col = 0;
			}
			atBOL = 0;
			if (c == '\n')
				atBOL = 1;
			if (c == EOF)
				break;
			continue;
		}
		atBOL = 0;
		if (n < 64) {
			word[n] = c;
			n = n + 1;
		}
	}
	if (col > 0)
		putchar('\n');
	return 0;
}`,
		Train: func() []byte { return roffInput(3131, 900) },
		Test:  func() []byte { return roffInput(3232, 1400) },
	}
}

func awkWorkload() Workload {
	return Workload{
		Name: "awk",
		Desc: "Pattern Scanning and Processing Language",
		Source: `
// awk interpreting a fixed little program over each record:
//
//	/42/          { hits++ }
//	$1 > $2       { bigger++ }
//	{ sum += $1; nf += NF; if (NF % 3 == 1) odd++ }
//
// Field splitting classifies every character; the pattern match compares
// digits against the literal; the action dispatcher switches on a
// compiled opcode per rule, the shape a real awk's inner loop has.
int sum = 0, bigger = 0, nf = 0, records = 0, hits = 0, odd = 0;
int fields[32];
int line[200];
int rules[4] = {1, 2, 3, 0};	// compiled program: opcodes, 0 ends
int runRule(int op, int nfld, int len) {
	int i;
	switch (op) {
	case 1:	// /42/ pattern: substring match on the raw record
		for (i = 0; i + 1 < len; i++) {
			if (line[i] == '4' && line[i + 1] == '2') {
				hits = hits + 1;
				return 1;
			}
		}
		break;
	case 2:	// $1 > $2
		if (nfld >= 2 && fields[0] > fields[1])
			bigger = bigger + 1;
		break;
	case 3:	// unconditional action block
		if (nfld > 0)
			sum = sum + fields[0];
		nf = nf + nfld;
		if (nfld % 3 == 1)
			odd = odd + 1;
		break;
	default:
		break;
	}
	return 0;
}
int main() {
	int c, nfld = 0, v = 0, infld = 0, len = 0, r;
	while (1) {
		c = getchar();
		// Separator tests first, the way field splitters are written;
		// the common case (a digit) comes last in source order.
		if (c == ' ' || c == '\t') {
			if (infld == 1) {
				if (nfld < 32) {
					fields[nfld] = v;
					nfld = nfld + 1;
				}
				v = 0;
				infld = 0;
			}
			if (len < 200) {
				line[len] = c;
				len = len + 1;
			}
			continue;
		}
		if (c >= '0' && c <= '9') {
			v = v * 10 + c - '0';
			infld = 1;
			if (len < 200) {
				line[len] = c;
				len = len + 1;
			}
			continue;
		}
		if (infld == 1) {
			if (nfld < 32) {
				fields[nfld] = v;
				nfld = nfld + 1;
			}
			v = 0;
			infld = 0;
		}
		if (c == '\n' || c == EOF) {
			if (nfld > 0 || len > 0) {
				records = records + 1;
				r = 0;
				while (rules[r] != 0) {
					runRule(rules[r], nfld, len);
					r = r + 1;
				}
			}
			nfld = 0;
			len = 0;
			if (c == EOF)
				break;
			continue;
		}
		// Non-numeric junk terminates the current field but stays in
		// the raw record for pattern matching.
		if (len < 200) {
			line[len] = c;
			len = len + 1;
		}
	}
	putint(records); putchar(' ');
	putint(nf); putchar(' ');
	putint(sum); putchar(' ');
	putint(bigger); putchar(' ');
	putint(hits); putchar(' ');
	putint(odd); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return numericLines(3333, 1800, 6, 10000) },
		Test:  func() []byte { return numericLines(3434, 2800, 6, 10000) },
	}
}

// joinInput emits the join workload's format: a count line, that many
// sorted "key value" lines, then a second table the same way.
func joinInput(seed uint64, n1, n2 int) []byte {
	g := newLCG(seed)
	table := func(n int) []byte {
		var out []byte
		out = appendInt(out, n)
		out = append(out, '\n')
		key := 0
		for i := 0; i < n; i++ {
			key += 1 + g.intn(4) // sorted, with gaps so joins are partial
			out = appendInt(out, key)
			out = append(out, ' ')
			out = appendInt(out, g.intn(1000))
			out = append(out, '\n')
		}
		return out
	}
	out := table(n1)
	out = append(out, table(n2)...)
	return out
}

// sdiffInput builds two mostly-similar sections separated by '%'.
func sdiffInput(seed uint64, nLines int) []byte {
	g := newLCG(seed)
	lines := make([][]byte, nLines)
	for i := range lines {
		var l []byte
		for w := 0; w < 2+g.intn(4); w++ {
			if w > 0 {
				l = append(l, ' ')
			}
			l = g.word(l, 7)
		}
		lines[i] = l
	}
	var out []byte
	for _, l := range lines {
		out = append(out, l...)
		out = append(out, '\n')
	}
	out = append(out, '%', '\n')
	for _, l := range lines {
		cp := append([]byte(nil), l...)
		if g.intn(4) == 0 && len(cp) > 0 {
			cp[g.intn(len(cp))] = byte('a' + g.intn(26))
		}
		out = append(out, cp...)
		out = append(out, '\n')
	}
	return out
}

func appendInt(dst []byte, v int) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var digits []byte
	for v > 0 {
		digits = append(digits, byte('0'+v%10))
		v /= 10
	}
	for i := len(digits) - 1; i >= 0; i-- {
		dst = append(dst, digits[i])
	}
	return dst
}
