package workload

// Text-processing workloads: wc, hyphen, deroff, pr, ptx.

func wcWorkload() Workload {
	return Workload{
		Name: "wc",
		Desc: "Displays Count of Lines, Words, and Characters",
		Source: `
// wc: the classic character-classification loop. The blank/tab/newline
// tests are the paper's Figure 1 situation: most characters are letters,
// so testing the common case first wins.
int lines = 0, words = 0, chars = 0;
int main() {
	int c;
	int inword = 0;
	while ((c = getchar()) != EOF) {
		chars = chars + 1;
		if (c == '\n')
			lines = lines + 1;
		if (c == ' ' || c == '\t' || c == '\n')
			inword = 0;
		else if (inword == 0) {
			words = words + 1;
			inword = 1;
		}
	}
	putint(lines); putchar(' ');
	putint(words); putchar(' ');
	putint(chars); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return textInput(101, 6000, 30) },
		Test:  func() []byte { return textInput(202, 9000, 25) },
	}
}

func hyphenWorkload() Workload {
	return Workload{
		Name: "hyphen",
		Desc: "Lists Hyphenated Words in a File",
		Source: `
// hyphen: emit words containing a hyphen. Word-boundary classification
// dominates; the hyphen test's probability shifts between training and
// test inputs, which is what hurt this program in the paper.
int buf[96];
int nout = 0;
int main() {
	int c;
	int n = 0;
	int hasHyphen = 0;
	int i;
	while ((c = getchar()) != EOF) {
		if (c == ' ' || c == '\t' || c == '\n' || c == '.' || c == ',' ||
		    c == ';' || c == ':' || c == '!' || c == '?') {
			if (hasHyphen == 1 && n > 0) {
				for (i = 0; i < n; i++)
					putchar(buf[i]);
				putchar('\n');
				nout = nout + 1;
			}
			n = 0;
			hasHyphen = 0;
		} else {
			if (c == '-')
				hasHyphen = 1;
			if (n < 96) {
				buf[n] = c;
				n = n + 1;
			}
		}
	}
	putint(nout); putchar('\n');
	return 0;
}`,
		// Hyphens are much rarer in training than in test data: the
		// trained ordering mispredicts the test distribution, as in the
		// paper's hyphen result.
		Train: func() []byte { return textInput(303, 6000, 15) },
		Test:  func() []byte { return textInput(404, 9000, 220) },
	}
}

func deroffWorkload() Workload {
	return Workload{
		Name: "deroff",
		Desc: "Removes nroff Constructs",
		Source: `
// deroff: strip roff requests and escapes, keep the prose.
int main() {
	int c;
	int atBOL = 1;      // at beginning of line
	int skipLine = 0;   // inside a dot request
	while ((c = getchar()) != EOF) {
		if (skipLine == 1) {
			if (c == '\n') {
				skipLine = 0;
				atBOL = 1;
			}
			continue;
		}
		if (atBOL == 1 && c == '.') {
			skipLine = 1;
			continue;
		}
		atBOL = 0;
		if (c == '\\') {
			// Escape: swallow the next character, double backslash
			// emits one.
			c = getchar();
			if (c == EOF)
				break;
			if (c == '\\')
				putchar(c);
			continue;
		}
		if (c == '\n')
			atBOL = 1;
		putchar(c);
	}
	return 0;
}`,
		Train: func() []byte { return roffInput(505, 900) },
		Test:  func() []byte { return roffInput(606, 1400) },
	}
}

func prWorkload() Workload {
	return Workload{
		Name: "pr",
		Desc: "Prepares File(s) for Printing",
		Source: `
// pr: paginate with headers, expand tabs to 8-column stops, number lines.
int page = 1;
int main() {
	int c;
	int line = 0;
	int col = 0;
	int atBOL = 1;
	while ((c = getchar()) != EOF) {
		if (atBOL == 1) {
			if (line == 0) {
				putchar('P'); putint(page); putchar('\n');
			}
			putint(line + 1);
			putchar(' ');
			atBOL = 0;
			col = 0;
		}
		if (c == '\t') {
			putchar(' ');
			col = col + 1;
			while (col % 8 != 0) {
				putchar(' ');
				col = col + 1;
			}
		} else if (c == '\n') {
			putchar('\n');
			line = line + 1;
			atBOL = 1;
			if (line == 56) {
				line = 0;
				page = page + 1;
			}
		} else if (c >= ' ') {
			putchar(c);
			col = col + 1;
		} else {
			// Control characters print as '?'.
			putchar('?');
			col = col + 1;
		}
	}
	putint(page); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return textInput(707, 7000, 20) },
		Test:  func() []byte { return textInput(808, 11000, 20) },
	}
}

func ptxWorkload() Workload {
	return Workload{
		Name: "ptx",
		Desc: "Generates a Permuted Index",
		Source: `
// ptx: emit "line-number word" for each index-worthy word; short words
// and pure numbers are skipped, as real ptx skips stop words.
int word[64];
int main() {
	int c;
	int n = 0;
	int line = 1;
	int digitsOnly = 1;
	int i;
	while (1) {
		c = getchar();
		if (c == ' ' || c == '\t' || c == '\n' || c == EOF ||
		    c == '.' || c == ',' || c == ';' || c == ':') {
			if (n >= 3 && digitsOnly == 0) {
				putint(line);
				putchar(' ');
				for (i = 0; i < n; i++)
					putchar(word[i]);
				putchar('\n');
			}
			n = 0;
			digitsOnly = 1;
			if (c == '\n')
				line = line + 1;
			if (c == EOF)
				break;
		} else {
			if (c < '0' || c > '9')
				digitsOnly = 0;
			if (n < 64) {
				word[n] = c;
				n = n + 1;
			}
		}
	}
	putint(line); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return textInput(909, 5000, 25) },
		Test:  func() []byte { return textInput(1010, 8000, 25) },
	}
}
