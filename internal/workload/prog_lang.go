package workload

// Compiler-flavoured workloads: cb, cpp, ctags, lex, yacc.

func cbWorkload() Workload {
	return Workload{
		Name: "cb",
		Desc: "A Simple C Program Beautifier",
		Source: `
// cb: re-indent C source by brace depth, squeeze blanks, keep comments
// and strings intact. Character dispatch dominates.
int main() {
	int c;
	int depth = 0;
	int atBOL = 1;
	int inComment = 0;
	int inString = 0;
	int lastBlank = 0;
	int i;
	while ((c = getchar()) != EOF) {
		if (inComment == 1) {
			putchar(c);
			if (c == '*') {
				c = getchar();
				if (c == EOF) break;
				putchar(c);
				if (c == '/')
					inComment = 0;
			}
			continue;
		}
		if (inString == 1) {
			putchar(c);
			if (c == '\\') {
				c = getchar();
				if (c == EOF) break;
				putchar(c);
			} else if (c == '"')
				inString = 0;
			continue;
		}
		if (atBOL == 1) {
			if (c == ' ' || c == '\t')
				continue;      // strip old indentation
			if (c != '\n') {
				i = depth;
				if (c == '}')
					i = i - 1;
				while (i > 0) {
					putchar('\t');
					i = i - 1;
				}
				atBOL = 0;
			}
		}
		if (c == '{') {
			depth = depth + 1;
			putchar(c);
		} else if (c == '}') {
			if (depth > 0)
				depth = depth - 1;
			putchar(c);
		} else if (c == '"') {
			inString = 1;
			putchar(c);
		} else if (c == '/') {
			putchar(c);
			c = getchar();
			if (c == EOF) break;
			if (c == '*')
				inComment = 1;
			putchar(c);
		} else if (c == '\n') {
			putchar(c);
			atBOL = 1;
			lastBlank = 0;
		} else if (c == ' ' || c == '\t') {
			if (lastBlank == 0)
				putchar(' ');
			lastBlank = 1;
			continue;
		} else {
			putchar(c);
		}
		lastBlank = 0;
	}
	putint(depth); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return cSourceInput(1111, 700) },
		Test:  func() []byte { return cSourceInput(1212, 1100) },
	}
}

func cppWorkload() Workload {
	return Workload{
		Name: "cpp",
		Desc: "C Compiler Preprocessor",
		Source: `
// cpp: recognize preprocessor directives (dispatched through a switch on
// the first directive letter), strip comments, count conditional nesting,
// and pass other text through.
int includes = 0, defines = 0, conds = 0, others = 0;
int main() {
	int c;
	int atBOL = 1;
	int depth = 0;
	while ((c = getchar()) != EOF) {
		if (atBOL == 1 && c == '#') {
			c = getchar();
			switch (c) {
			case 'i':	// include, ifdef, if
				c = getchar();
				if (c == 'n')
					includes = includes + 1;
				else {
					conds = conds + 1;
					depth = depth + 1;
				}
				break;
			case 'd':	// define
				defines = defines + 1;
				break;
			case 'e':	// endif, else
				c = getchar();
				if (c == 'n') {
					if (depth > 0)
						depth = depth - 1;
				}
				conds = conds + 1;
				break;
			case 'u':	// undef
				defines = defines + 1;
				break;
			default:
				others = others + 1;
				break;
			}
			// Swallow the rest of the directive line.
			while (c != '\n' && c != EOF)
				c = getchar();
			if (c == EOF)
				break;
			atBOL = 1;
			continue;
		}
		if (c == '/') {
			c = getchar();
			if (c == '*') {
				// Comment: skip to the closing marker.
				int prev = 0;
				while ((c = getchar()) != EOF) {
					if (prev == '*' && c == '/')
						break;
					prev = c;
				}
				if (c == EOF)
					break;
				continue;
			}
			putchar('/');
			if (c == EOF)
				break;
		}
		putchar(c);
		atBOL = 0;
		if (c == '\n')
			atBOL = 1;
	}
	putint(includes); putchar(' ');
	putint(defines); putchar(' ');
	putint(conds); putchar(' ');
	putint(others); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return cSourceInput(1313, 800) },
		Test:  func() []byte { return cSourceInput(1414, 1200) },
	}
}

func ctagsWorkload() Workload {
	return Workload{
		Name: "ctags",
		Desc: "Generates Tag File for vi",
		Source: `
// ctags: scan identifiers and report ones directly followed by an open
// parenthesis at brace depth zero (function definitions, roughly).
int ident[64];
int tags = 0;
int main() {
	int c;
	int n = 0;
	int depth = 0;
	int line = 1;
	int i;
	while ((c = getchar()) != EOF) {
		if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
			if (n < 64) {
				ident[n] = c;
				n = n + 1;
			}
			continue;
		}
		if (c >= '0' && c <= '9') {
			if (n > 0 && n < 64) {	// digits continue an identifier
				ident[n] = c;
				n = n + 1;
			}
			continue;
		}
		if (c == '(' && n > 0 && depth == 0) {
			for (i = 0; i < n; i++)
				putchar(ident[i]);
			putchar(' ');
			putint(line);
			putchar('\n');
			tags = tags + 1;
		}
		n = 0;
		if (c == '{')
			depth = depth + 1;
		else if (c == '}') {
			if (depth > 0)
				depth = depth - 1;
		} else if (c == '\n')
			line = line + 1;
	}
	putint(tags); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return cSourceInput(1515, 700) },
		Test:  func() []byte { return cSourceInput(1616, 1100) },
	}
}

func lexWorkload() Workload {
	return Workload{
		Name: "lex",
		Desc: "Lexical Analysis Program Generator",
		Source: `
// lex: tokenize its input the way a generated scanner would, with a
// dispatch switch over the token's first character and classification
// chains for the token body.
int kws = 0, idents = 0, numbers = 0, strings = 0, ops = 0, punct = 0;
int first[8];
int main() {
	int c;
	int n;
	while ((c = getchar()) != EOF) {
		if (c == ' ' || c == '\t' || c == '\n')
			continue;
		switch (c) {
		case '"':
			while ((c = getchar()) != EOF && c != '"') {
				if (c == '\\')
					c = getchar();
			}
			strings = strings + 1;
			break;
		case '+': case '-': case '*': case '/': case '%':
		case '<': case '>': case '=': case '!': case '&': case '|':
			ops = ops + 1;
			break;
		case '(': case ')': case '{': case '}': case '[': case ']':
		case ';': case ',': case '.': case '#': case ':':
			punct = punct + 1;
			break;
		default:
			if (c >= '0' && c <= '9') {
				while ((c = getchar()) != EOF && c >= '0' && c <= '9')
					;
				numbers = numbers + 1;
			} else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
				n = 0;
				first[0] = c;
				while ((c = getchar()) != EOF &&
				       ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				        (c >= '0' && c <= '9') || c == '_')) {
					n = n + 1;
					if (n < 8)
						first[n] = c;
				}
				// Tiny keyword filter: if, int, for, while, else,
				// return -- match on first letters and length.
				if (first[0] == 'i' && (n == 1 || n == 2))
					kws = kws + 1;
				else if (first[0] == 'f' && n == 2)
					kws = kws + 1;
				else if (first[0] == 'w' && n == 4)
					kws = kws + 1;
				else if (first[0] == 'e' && n == 3)
					kws = kws + 1;
				else if (first[0] == 'r' && n == 5)
					kws = kws + 1;
				else
					idents = idents + 1;
			}
			break;
		}
	}
	putint(kws); putchar(' ');
	putint(idents); putchar(' ');
	putint(numbers); putchar(' ');
	putint(strings); putchar(' ');
	putint(ops); putchar(' ');
	putint(punct); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return cSourceInput(1717, 800) },
		Test:  func() []byte { return cSourceInput(1818, 1200) },
	}
}

func yaccWorkload() Workload {
	return Workload{
		Name: "yacc",
		Desc: "Parsing Program Generator",
		Source: `
// yacc: a shift-reduce expression parser of the kind yacc generates:
// token classification feeding a state-dispatch switch, with an explicit
// value/operator stack.
int vals[128];
int opstack[128];
int exprs = 0, errors = 0, total = 0;
int prec(int op) {
	if (op == '*' || op == '/')
		return 2;
	if (op == '+' || op == '-')
		return 1;
	return 0;
}
int apply(int a, int b, int op) {
	switch (op) {
	case '+': return a + b;
	case '-': return a - b;
	case '*': return a * b;
	case '/':
		if (b == 0)
			return 0;
		return a / b;
	}
	return 0;
}
int main() {
	int c;
	int sp = 0, osp = 0;
	int num = 0, innum = 0;
	int expect = 0;	// 0: operand, 1: operator
	while (1) {
		c = getchar();
		if (c >= '0' && c <= '9') {
			num = num * 10 + c - '0';
			innum = 1;
			continue;
		}
		if (innum == 1) {
			if (sp < 128) {
				vals[sp] = num;
				sp = sp + 1;
			}
			num = 0;
			innum = 0;
			expect = 1;
		}
		if (c == ' ' || c == '\t')
			continue;
		if (c == '+' || c == '-' || c == '*' || c == '/') {
			if (expect == 0) {
				errors = errors + 1;
				continue;
			}
			while (osp > 0 && prec(opstack[osp-1]) >= prec(c) && sp >= 2) {
				sp = sp - 2;
				osp = osp - 1;
				vals[sp] = apply(vals[sp], vals[sp+1], opstack[osp]);
				sp = sp + 1;
			}
			if (osp < 128) {
				opstack[osp] = c;
				osp = osp + 1;
			}
			expect = 0;
			continue;
		}
		if (c == '\n' || c == EOF) {
			while (osp > 0 && sp >= 2) {
				sp = sp - 2;
				osp = osp - 1;
				vals[sp] = apply(vals[sp], vals[sp+1], opstack[osp]);
				sp = sp + 1;
			}
			if (sp == 1) {
				total = total + vals[0];
				exprs = exprs + 1;
			} else if (sp > 1)
				errors = errors + 1;
			sp = 0;
			osp = 0;
			expect = 0;
			if (c == EOF)
				break;
			continue;
		}
		errors = errors + 1;
	}
	putint(exprs); putchar(' ');
	putint(errors); putchar(' ');
	putint(total); putchar('\n');
	return 0;
}`,
		Train: func() []byte { return exprInput(1919, 600) },
		Test:  func() []byte { return exprInput(2020, 900) },
	}
}

// exprInput generates arithmetic expression lines for the yacc workload.
func exprInput(seed uint64, nLines int) []byte {
	g := newLCG(seed)
	var out []byte
	for i := 0; i < nLines; i++ {
		terms := 1 + g.intn(6)
		for t := 0; t < terms; t++ {
			if t > 0 {
				out = append(out, ' ', g.pick("+-*/"), ' ')
			}
			v := 1 + g.intn(999)
			var digits []byte
			for v > 0 {
				digits = append(digits, byte('0'+v%10))
				v /= 10
			}
			for d := len(digits) - 1; d >= 0; d-- {
				out = append(out, digits[d])
			}
		}
		out = append(out, '\n')
	}
	return out
}
