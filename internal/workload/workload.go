// Package workload provides the 17 benchmark programs of the paper's
// Table 3. The original evaluation compiled the real Unix utilities; we
// cannot, so each workload is a Mini-C program reproducing the branch
// structure of its namesake's inner loop (character classification,
// comparison chains, dispatch switches), paired with deterministic input
// generators. Training and test inputs use different seeds and slightly
// different distributions, mirroring the paper's train/test split (which
// is what made hyphen regress there).
package workload

// Workload is one benchmark program.
type Workload struct {
	Name   string
	Desc   string // the paper's Table 3 description
	Source string // Mini-C source
	Train  func() []byte
	Test   func() []byte
}

// All returns the workloads in the paper's (alphabetical) order.
func All() []Workload {
	return []Workload{
		awkWorkload(),
		cbWorkload(),
		cppWorkload(),
		ctagsWorkload(),
		deroffWorkload(),
		grepWorkload(),
		hyphenWorkload(),
		joinWorkload(),
		lexWorkload(),
		nroffWorkload(),
		prWorkload(),
		ptxWorkload(),
		sdiffWorkload(),
		sedWorkload(),
		sortWorkload(),
		wcWorkload(),
		yaccWorkload(),
	}
}

// Named returns the workload with the given name, or false.
func Named(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// lcg is a small deterministic generator so inputs are reproducible
// without touching math/rand's global state.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 33
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// pick returns a random byte of s.
func (l *lcg) pick(s string) byte { return s[l.intn(len(s))] }

// word appends a lowercase word of length 1..maxLen.
func (l *lcg) word(dst []byte, maxLen int) []byte {
	n := 1 + l.intn(maxLen)
	for i := 0; i < n; i++ {
		dst = append(dst, byte('a'+l.intn(26)))
	}
	return dst
}

// textInput generates prose-like text: words separated by blanks, with
// punctuation, digits, and newlines. hyphenRate permille of words carry a
// hyphen (for the hyphen workload's sensitivity to input distribution).
func textInput(seed uint64, nWords, hyphenRate int) []byte {
	g := newLCG(seed)
	var out []byte
	col := 0
	for w := 0; w < nWords; w++ {
		start := len(out)
		out = g.word(out, 9)
		if g.intn(1000) < hyphenRate {
			out = append(out, '-')
			out = g.word(out, 5)
		}
		if g.intn(12) == 0 {
			out = append(out, g.pick(".,;:!?"))
		}
		if g.intn(20) == 0 {
			out = append(out, ' ')
			for i := 0; i < 1+g.intn(4); i++ {
				out = append(out, byte('0'+g.intn(10)))
			}
		}
		col += len(out) - start + 1
		if col > 60 {
			out = append(out, '\n')
			col = 0
		} else if g.intn(30) == 0 {
			out = append(out, '\t')
		} else {
			out = append(out, ' ')
		}
	}
	out = append(out, '\n')
	return out
}

// cSourceInput generates C-like source text: declarations, braces,
// comments, preprocessor lines, operators — what cb, cpp, ctags and lex
// chew on.
func cSourceInput(seed uint64, nLines int) []byte {
	g := newLCG(seed)
	var out []byte
	kw := []string{"int", "char", "if", "else", "while", "for", "return", "break", "static"}
	directives := []string{"#include <x.h>", "#define N 10", "#ifdef X", "#endif", "#undef N", "#else"}
	depth := 0
	for i := 0; i < nLines; i++ {
		switch g.intn(10) {
		case 0:
			out = append(out, directives[g.intn(len(directives))]...)
		case 1:
			out = append(out, "/* "...)
			out = g.word(out, 8)
			out = append(out, ' ')
			out = g.word(out, 8)
			out = append(out, " */"...)
		case 2:
			if depth < 6 {
				for t := 0; t < depth; t++ {
					out = append(out, '\t')
				}
				out = append(out, kw[g.intn(len(kw))]...)
				out = append(out, ' ')
				out = g.word(out, 7)
				out = append(out, "() {"...)
				depth++
			}
		case 3:
			if depth > 0 {
				depth--
				for t := 0; t < depth; t++ {
					out = append(out, '\t')
				}
				out = append(out, '}')
			}
		default:
			for t := 0; t < depth; t++ {
				out = append(out, '\t')
			}
			out = append(out, kw[g.intn(len(kw))]...)
			out = append(out, ' ')
			out = g.word(out, 7)
			switch g.intn(4) {
			case 0:
				out = append(out, " = "...)
				for d := 0; d < 1+g.intn(4); d++ {
					out = append(out, byte('0'+g.intn(10)))
				}
			case 1:
				out = append(out, " += 2"...)
			case 2:
				out = append(out, '(')
				out = g.word(out, 5)
				out = append(out, ')')
			}
			out = append(out, ';')
		}
		out = append(out, '\n')
	}
	return out
}

// numericLines generates lines of small integers (for join, sort, awk).
func numericLines(seed uint64, nLines, maxFields, maxVal int) []byte {
	g := newLCG(seed)
	var out []byte
	for i := 0; i < nLines; i++ {
		nf := 1 + g.intn(maxFields)
		for f := 0; f < nf; f++ {
			if f > 0 {
				out = append(out, ' ')
			}
			v := g.intn(maxVal)
			if v == 0 {
				out = append(out, '0')
			}
			var digits []byte
			for v > 0 {
				digits = append(digits, byte('0'+v%10))
				v /= 10
			}
			for d := len(digits) - 1; d >= 0; d-- {
				out = append(out, digits[d])
			}
		}
		out = append(out, '\n')
	}
	return out
}

// roffInput generates nroff/deroff-style input: text lines mixed with
// dot-command lines and backslash escapes.
func roffInput(seed uint64, nLines int) []byte {
	g := newLCG(seed)
	cmds := []string{".pp", ".br", ".sp", ".ti", ".ft B", ".ce", ".fi", ".nf"}
	var out []byte
	for i := 0; i < nLines; i++ {
		if g.intn(5) == 0 {
			out = append(out, cmds[g.intn(len(cmds))]...)
		} else {
			for w := 0; w < 4+g.intn(8); w++ {
				if w > 0 {
					out = append(out, ' ')
				}
				if g.intn(15) == 0 {
					out = append(out, '\\')
					out = append(out, g.pick("fbiu*"))
				}
				out = g.word(out, 8)
			}
		}
		out = append(out, '\n')
	}
	return out
}
