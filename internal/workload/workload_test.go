package workload

import (
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

func execute(t *testing.T, name string, p *ir.Program, input []byte) (string, interp.Stats) {
	t.Helper()
	m := &interp.Machine{Prog: p, Input: input}
	if _, err := m.Run(); err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return m.Output.String(), m.Stats
}

func TestAllWorkloadsCount(t *testing.T) {
	ws := All()
	if len(ws) != 17 {
		t.Fatalf("got %d workloads, want 17 (paper Table 3)", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if len(w.Train()) == 0 || len(w.Test()) == 0 {
			t.Errorf("%s: empty input", w.Name)
		}
		if string(w.Train()) == string(w.Test()) {
			t.Errorf("%s: train and test inputs identical; the paper used distinct data sets", w.Name)
		}
	}
	if _, ok := Named("sort"); !ok {
		t.Error("Named(sort) failed")
	}
	if _, ok := Named("nonesuch"); ok {
		t.Error("Named(nonesuch) succeeded")
	}
}

// Every workload must compile, run, and behave identically before and
// after reordering, under every heuristic set.
func TestWorkloadsSemanticsPreserved(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			train := w.Train()
			test := w.Test()
			for _, h := range []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII} {
				r, err := pipeline.Build(w.Source, train, pipeline.Options{Switch: h, Optimize: true})
				if err != nil {
					t.Fatalf("set %v: %v", h, err)
				}
				out0, s0 := execute(t, w.Name, r.Baseline, test)
				out1, s1 := execute(t, w.Name, r.Reordered, test)
				if out0 != out1 {
					t.Fatalf("set %v: output changed (%d vs %d bytes)", h, len(out0), len(out1))
				}
				if s0.Insts == 0 {
					t.Fatalf("set %v: workload executed no instructions", h)
				}
				t.Logf("set %v: insts %d -> %d (%+.2f%%), branches %d -> %d, seqs %d/%d reordered",
					h, s0.Insts, s1.Insts,
					100*(float64(s1.Insts)/float64(s0.Insts)-1),
					s0.CondBranches, s1.CondBranches,
					r.ReorderedSeqs(), r.TotalSeqs())
			}
		})
	}
}

// The headline result: across the suite, reordering must reduce total
// instructions and branches under every heuristic set, with Set III
// (always linear search) benefiting the most, as in Table 4.
func TestSuiteWideImprovement(t *testing.T) {
	reduction := map[lower.HeuristicSet]float64{}
	for _, h := range []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII} {
		var base, reord uint64
		for _, w := range All() {
			r, err := pipeline.Build(w.Source, w.Train(), pipeline.Options{Switch: h, Optimize: true})
			if err != nil {
				t.Fatalf("%s set %v: %v", w.Name, h, err)
			}
			_, s0 := execute(t, w.Name, r.Baseline, w.Test())
			_, s1 := execute(t, w.Name, r.Reordered, w.Test())
			base += s0.Insts
			reord += s1.Insts
		}
		red := 1 - float64(reord)/float64(base)
		reduction[h] = red
		t.Logf("set %v: %.2f%% fewer instructions suite-wide", h, 100*red)
		if red <= 0 {
			t.Errorf("set %v: reordering did not reduce suite-wide instructions", h)
		}
	}
	if reduction[lower.SetIII] <= reduction[lower.SetI] {
		t.Errorf("Set III reduction (%.3f) should exceed Set I (%.3f), as in Table 4",
			reduction[lower.SetIII], reduction[lower.SetI])
	}
}
