package workload

// Differential testing of the reordering transformation: for every
// workload and heuristic set — and for randomized ablation option
// combinations — the baseline and reordered executables must behave
// identically on inputs they were never trained or tuned on, including
// adversarial byte soup and trap-triggering cases. This extends
// oracle_test.go's profile well-formedness checks to end-to-end semantic
// preservation (the property Theorem 2 of the paper guarantees).

import (
	"fmt"
	"testing"

	"branchreorder/internal/core"
	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// fuzzInput is FuzzInput (fuzzinput.go), kept short-named for the
// battery below.
func fuzzInput(seed uint64, n int) []byte { return FuzzInput(seed, n) }

// execResult captures everything observable about one execution.
type execResult struct {
	out string
	ret int64
	err string
}

func execProg(p *ir.Program, input []byte) execResult {
	m := &interp.Machine{Prog: p, Input: input, MaxSteps: 1 << 28}
	ret, err := m.Run()
	r := execResult{out: m.Output.String(), ret: ret}
	if err != nil {
		r.err = err.Error()
	}
	return r
}

// diffInputs is the per-build battery: the held-out test input plus
// seeded random inputs of varying size (fewer under -short).
func diffInputs(w Workload, seed uint64) [][]byte {
	inputs := [][]byte{w.Test(), fuzzInput(seed, 2000)}
	if !testing.Short() {
		inputs = append(inputs, fuzzInput(seed+1, 400), fuzzInput(seed+2, 6000))
	}
	return inputs
}

func checkEquivalent(t *testing.T, b *pipeline.BuildResult, label string, inputs [][]byte) {
	t.Helper()
	for i, in := range inputs {
		base := execProg(b.Baseline, in)
		reord := execProg(b.Reordered, in)
		if base != reord {
			t.Errorf("%s input %d: behaviour diverged\nbaseline:  ret=%d err=%q out=%q\nreordered: ret=%d err=%q out=%q",
				label, i, base.ret, base.err, truncate(base.out), reord.ret, reord.err, truncate(reord.out))
		}
	}
}

func truncate(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}

// nameSeed derives a stable per-workload seed without touching global
// randomness.
func nameSeed(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

// Every workload, every heuristic set, default transformation.
func TestDifferentialSemanticPreservation(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, set := range []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII} {
				b, err := pipeline.Build(w.Source, w.Train(), pipeline.Options{Switch: set, Optimize: true})
				if err != nil {
					t.Fatalf("set %v: %v", set, err)
				}
				checkEquivalent(t, b, fmt.Sprintf("set %v", set),
					diffInputs(w, nameSeed(w.Name)^uint64(set)))
			}
		})
	}
}

// Every workload under randomized (seeded) TransformOptions and
// common-successor combinations: disabling mechanisms may cost
// instructions but must never change behaviour.
func TestDifferentialRandomizedOptions(t *testing.T) {
	nVariants := 2
	if testing.Short() {
		nVariants = 1
	}
	sets := []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII}
	// Draw every variant up front so the parallel subtests never share
	// the generator.
	type variantCase struct {
		w    Workload
		opts pipeline.Options
		seed uint64
	}
	g := newLCG(0xd1ffe7e57)
	var cases []variantCase
	for _, w := range All() {
		for k := 0; k < nVariants; k++ {
			cases = append(cases, variantCase{
				w: w,
				opts: pipeline.Options{
					Switch:          sets[g.intn(3)],
					Optimize:        true,
					CommonSuccessor: g.intn(2) == 1,
					Transform: core.TransformOptions{
						NoBoundOrder: g.intn(2) == 1,
						NoCmpReuse:   g.intn(2) == 1,
						NoTailDup:    g.intn(2) == 1,
					},
				},
				seed: g.next(),
			})
		}
	}
	for i, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/v%d", c.w.Name, i%nVariants), func(t *testing.T) {
			t.Parallel()
			b, err := pipeline.Build(c.w.Source, c.w.Train(), c.opts)
			if err != nil {
				t.Fatalf("%+v: %v", c.opts, err)
			}
			checkEquivalent(t, b, fmt.Sprintf("opts %+v", c.opts), diffInputs(c.w, c.seed))
		})
	}
}
