package workload

import (
	"math"
	"testing"

	"branchreorder/internal/core"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// The paper validated its Figure 8 selection against an exhaustive
// search: "Our approach always selected the optimal sequence for every
// reorderable sequence in every test program for the training data sets."
// Reproduce that check over every sequence of every workload whose arm
// count keeps the permutation space tractable.
func TestSelectionOptimalOnAllWorkloadSequences(t *testing.T) {
	checked := 0
	for _, w := range All() {
		for _, set := range []lower.HeuristicSet{lower.SetI, lower.SetIII} {
			b, err := pipeline.Build(w.Source, w.Train(), pipeline.Options{Switch: set, Optimize: true})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			for _, seq := range b.Sequences {
				sp := b.Profile.Seqs[seq.ID]
				if sp == nil || sp.Total == 0 || len(seq.Arms) > 7 {
					continue
				}
				fast := core.Select(seq.Arms)
				slow := core.SelectExhaustive(seq.Arms)
				if fast.Cost > slow.Cost+1e-9 {
					t.Errorf("%s (set %v) seq %d: Figure 8 cost %.6f > optimal %.6f\narms: %+v",
						w.Name, set, seq.ID, fast.Cost, slow.Cost, seq.Arms)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no sequences checked")
	}
	t.Logf("verified optimality on %d real sequences", checked)
}

// The profile probabilities of an executed sequence must sum to 1, and
// counts must cover the domain (every head execution lands in an arm).
func TestWorkloadProfilesWellFormed(t *testing.T) {
	for _, name := range []string{"wc", "cpp", "sort", "yacc"} {
		w, _ := Named(name)
		b, err := pipeline.Build(w.Source, w.Train(), pipeline.Options{Switch: lower.SetIII, Optimize: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, seq := range b.Sequences {
			sp := b.Profile.Seqs[seq.ID]
			var counted uint64
			for _, c := range sp.Counts {
				counted += c
			}
			if counted != sp.Total {
				t.Errorf("%s seq %d: counts sum %d != total %d", name, seq.ID, counted, sp.Total)
			}
			if sp.Total == 0 {
				continue
			}
			var psum float64
			for _, a := range seq.Arms {
				psum += a.P
			}
			if math.Abs(psum-1) > 1e-9 {
				t.Errorf("%s seq %d: probabilities sum to %v", name, seq.ID, psum)
			}
		}
	}
}
