package workload

// FuzzInput generates adversarial interpreter input: words, digits,
// punctuation, control bytes, NULs and high bytes — byte classes the
// workloads dispatch on, in distributions none of them trained on. It is
// deterministic in seed, shared by the workload differential tests and
// the engine equivalence tests (internal/equiv).
func FuzzInput(seed uint64, n int) []byte {
	g := newLCG(seed)
	var out []byte
	for len(out) < n {
		switch g.intn(10) {
		case 0:
			out = append(out, byte(g.intn(256)))
		case 1:
			out = append(out, '\n')
		case 2:
			out = append(out, g.pick(" \t\t  "))
		case 3:
			out = append(out, g.pick(".,;:!?-#{}()[]/\\*\"'"))
		case 4:
			for i := 0; i < 1+g.intn(6); i++ {
				out = append(out, byte('0'+g.intn(10)))
			}
		case 5:
			out = append(out, g.pick("+-*/%<>=&|^~"))
		default:
			out = g.word(out, 9)
		}
	}
	return out
}
