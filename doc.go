// Package branchreorder is a from-scratch reproduction of
//
//	Minghui Yang, Gang-Ryung Uh, David B. Whalley.
//	"Improving Performance by Branch Reordering".
//	PLDI 1998. DOI 10.1145/277650.277711.
//
// The repository contains a Mini-C front end, a SPARC-like IR with
// condition codes, a conventional optimizer, the paper's profile-guided
// branch-reordering transformation, an interpreter/simulator with branch
// predictors and machine timing models, 17 workloads mirroring the
// paper's Unix-utility benchmarks, and a harness regenerating every table
// and figure of the evaluation. See README.md for a tour, DESIGN.md for
// the system inventory, and EXPERIMENTS.md for paper-versus-measured
// results.
//
// The benchmarks in bench_test.go regenerate the evaluation; run
//
//	go test -bench=. -benchmem
//
// or use cmd/brbench for the rendered tables.
package branchreorder
