// Quickstart: compile the paper's Figure 1 character-classification loop,
// apply profile-guided branch reordering, and compare the baseline and
// reordered executables on fresh input.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// The paper's Figure 1(a): count blanks, newlines, and other characters.
// The common case (an ordinary letter) is tested last — exactly what the
// transformation fixes automatically.
const src = `
int x = 0, y = 0, z = 0;
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		if (c == ' ')
			y = y + 1;
		else if (c == '\n')
			x = x + 1;
		else
			z = z + 1;
	}
	putint(x); putchar(' '); putint(y); putchar(' '); putint(z); putchar('\n');
	return 0;
}`

func main() {
	// Training input: realistic text, mostly letters.
	train := strings.Repeat("the quick brown fox jumps over the lazy dog\n", 200)
	// Test input: same flavour, different content.
	test := strings.Repeat("pack my box with five dozen liquor jugs today\n", 300)

	build, err := pipeline.Build(src, []byte(train), pipeline.Options{
		Switch:   lower.SetI,
		Optimize: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Detected reorderable sequences:")
	for i, s := range build.Sequences {
		fmt.Printf("  %v\n    decision: %v\n", s, build.Results[i].Reason)
	}
	fmt.Println()

	base := run(build.Baseline, test)
	reord := run(build.Reordered, test)

	fmt.Printf("%-28s %14s %14s\n", "", "baseline", "reordered")
	row := func(name string, a, b uint64) {
		fmt.Printf("%-28s %14d %14d   (%+.2f%%)\n", name, a, b,
			100*(float64(b)/float64(a)-1))
	}
	row("instructions executed", base.Insts, reord.Insts)
	row("conditional branches", base.CondBranches, reord.CondBranches)
	row("unconditional jumps", base.Jumps, reord.Jumps)
	fmt.Println("\nBoth executables print:", outOf(build.Baseline, test))
}

func run(p *ir.Program, input string) interp.Stats {
	m := &interp.Machine{Prog: p, Input: []byte(input)}
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return m.Stats
}

func outOf(p *ir.Program, input string) string {
	m := &interp.Machine{Prog: p, Input: []byte(input)}
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return strings.TrimSpace(m.Output.String())
}
