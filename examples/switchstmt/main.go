// switchstmt: lower the same dispatch-heavy scanner under the paper's
// three switch-translation heuristic sets (Table 2), reorder each, and
// compare modelled cycles on the three SPARC machines. This reproduces
// the paper's observation that branch reordering gets more valuable as
// indirect jumps get more expensive — and that profile data could decide
// between a jump table and a reordered linear search.
//
//	go run ./examples/switchstmt
package main

import (
	"fmt"
	"log"

	"branchreorder/internal/lower"
	"branchreorder/internal/machine"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/sim"
	"branchreorder/internal/workload"
)

func main() {
	// The lex workload carries the suite's biggest switch statements.
	w, ok := workload.Named("lex")
	if !ok {
		log.Fatal("lex workload missing")
	}

	fmt.Println("lex workload under the three switch-translation heuristic sets")
	fmt.Println()
	fmt.Printf("%-5s %-28s %12s %12s %10s\n",
		"set", "switch translations", "insts", "reordered", "Δinsts")

	type built struct {
		set  lower.HeuristicSet
		base *sim.Measurement
		re   *sim.Measurement
	}
	var results []built
	for _, set := range []lower.HeuristicSet{lower.SetI, lower.SetII, lower.SetIII} {
		b, err := pipeline.Build(w.Source, w.Train(), pipeline.Options{Switch: set, Optimize: true})
		if err != nil {
			log.Fatal(err)
		}
		base, err := sim.Run(b.Baseline, w.Test(), nil)
		if err != nil {
			log.Fatal(err)
		}
		re, err := sim.Run(b.Reordered, w.Test(), nil)
		if err != nil {
			log.Fatal(err)
		}
		kinds := ""
		for _, k := range []lower.SwitchKind{lower.SwitchIndirect, lower.SwitchBinary, lower.SwitchLinear} {
			if n := b.SwitchKinds[k]; n > 0 {
				kinds += fmt.Sprintf("%d %v  ", n, k)
			}
		}
		fmt.Printf("%-5v %-28s %12d %12d %+9.2f%%\n",
			set, kinds, base.Stats.Insts, re.Stats.Insts,
			100*(float64(re.Stats.Insts)/float64(base.Stats.Insts)-1))
		results = append(results, built{set, base, re})
	}

	fmt.Println("\nModelled cycles (baseline -> reordered) per machine, using the")
	fmt.Println("heuristic set the paper pairs with each machine:")
	for _, cfg := range machine.All() {
		for _, r := range results {
			if r.set != cfg.Switch {
				continue
			}
			c0 := r.base.Cycles[cfg.Name]
			c1 := r.re.Cycles[cfg.Name]
			fmt.Printf("  %-14s (set %-3v) %12d -> %12d   (%+.2f%%)\n",
				cfg.Name, cfg.Switch, c0, c1, 100*(float64(c1)/float64(c0)-1))
		}
	}
	fmt.Println("\nSet III's linear searches start out slower than Set I's binary")
	fmt.Println("search, but expose the whole switch to reordering — after the")
	fmt.Println("transformation the linear version is the fastest of the three,")
	fmt.Println("which is why the paper suggests profile data should pick the")
	fmt.Println("switch translation method in the first place.")
}
