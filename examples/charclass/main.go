// charclass: show how the trained ordering depends on the training
// distribution, and what happens when the test distribution shifts — the
// effect behind the paper's hyphen regression. The same scanner is
// trained once on prose and once on numeric tables, then both versions
// are measured on both kinds of input.
//
//	go run ./examples/charclass
package main

import (
	"fmt"
	"log"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

const src = `
int letters = 0, digits = 0, blanks = 0, newlines = 0, others = 0;
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		if (c == ' ' || c == '\t')
			blanks = blanks + 1;
		else if (c == '\n')
			newlines = newlines + 1;
		else if (c >= '0' && c <= '9')
			digits = digits + 1;
		else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))
			letters = letters + 1;
		else
			others = others + 1;
	}
	putint(letters); putchar(' ');
	putint(digits); putchar(' ');
	putint(blanks); putchar(' ');
	putint(newlines); putchar(' ');
	putint(others); putchar('\n');
	return 0;
}`

func gen(kind string, n int) []byte {
	var out []byte
	seed := uint64(12345)
	rnd := func(m int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(m))
	}
	for i := 0; i < n; i++ {
		var c byte
		switch kind {
		case "prose":
			r := rnd(100)
			switch {
			case r < 14:
				c = ' '
			case r < 17:
				c = '\n'
			case r < 19:
				c = byte('0' + rnd(10))
			default:
				c = byte('a' + rnd(26))
			}
		case "tables":
			r := rnd(100)
			switch {
			case r < 55:
				c = byte('0' + rnd(10))
			case r < 80:
				c = ' '
			case r < 88:
				c = '\n'
			default:
				c = byte('a' + rnd(26))
			}
		}
		out = append(out, c)
	}
	return out
}

func main() {
	prose := gen("prose", 40000)
	tables := gen("tables", 40000)

	builds := map[string]*ir.Program{}
	for name, train := range map[string][]byte{"prose-trained": prose, "table-trained": tables} {
		b, err := pipeline.Build(src, train, pipeline.Options{Switch: lower.SetI, Optimize: true})
		if err != nil {
			log.Fatal(err)
		}
		builds[name] = b.Reordered
		if name == "prose-trained" {
			builds["baseline"] = b.Baseline
		}
	}

	fmt.Printf("%-16s %16s %16s\n", "executable", "insts on prose", "insts on tables")
	for _, name := range []string{"baseline", "prose-trained", "table-trained"} {
		p := builds[name]
		fmt.Printf("%-16s %16d %16d\n", name, count(p, prose), count(p, tables))
	}
	fmt.Println("\nEach trained build wins on its own distribution; training on the")
	fmt.Println("wrong distribution gives up part of the benefit — the paper's")
	fmt.Println("train/test sensitivity (Section 9, the hyphen row).")
}

func count(p *ir.Program, input []byte) uint64 {
	m := &interp.Machine{Prog: p, Input: input}
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return m.Stats.Insts
}
