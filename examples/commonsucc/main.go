// commonsucc: the paper's Section 10 extension (Figure 14) — reordering
// consecutive branches with a common successor. Unlike range conditions,
// the branches may test different variables, so the profile records the
// joint outcome distribution with an array of combination counters (the
// paper judges this reasonable for up to 7 branches), and the ordering is
// chosen against that joint distribution.
//
//	go run ./examples/commonsucc
package main

import (
	"fmt"
	"log"
	"math/rand"

	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

// The filter resembles Figure 14's condition: several tests over two
// variables joined by ||. The last test is by far the likeliest to hold.
const src = `
int pass = 0, fail = 0;
int main() {
	int a, b;
	while (1) {
		a = getchar();
		if (a == EOF)
			break;
		b = getchar();
		if (b == EOF)
			break;
		if (a == 0 || b == 1 || a < 'A' || b > 'w')
			pass = pass + 1;
		else
			fail = fail + 1;
	}
	putint(pass); putchar(' '); putint(fail); putchar('\n');
	return 0;
}`

func gen(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var out []byte
	for i := 0; i < n; i++ {
		// a: usually a letter; b: usually above 'w' (hot last test).
		out = append(out, byte('A'+rng.Intn(40)), byte('x'+rng.Intn(3)))
		if rng.Intn(10) == 0 {
			out[len(out)-1] = byte('a' + rng.Intn(20))
		}
	}
	return out
}

func main() {
	train, test := gen(1, 4000), gen(2, 6000)

	for _, ext := range []bool{false, true} {
		b, err := pipeline.Build(src, train, pipeline.Options{
			Switch:          lower.SetI,
			Optimize:        true,
			CommonSuccessor: ext,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := "range conditions only     "
		if ext {
			label = "with common-succ extension"
		}
		st := measure(b.Reordered, test)
		fmt.Printf("%s  insts=%9d  branches=%9d\n", label, st.Insts, st.CondBranches)
		if ext {
			for i, s := range b.OrSequences {
				fmt.Printf("  detected: %v\n", s)
				res := b.OrResults[i]
				fmt.Printf("  decision: %v, order %v, expected branches/entry %.3f -> %.3f\n",
					res.Reason, res.Order, res.OrigCost, res.NewCost)
			}
		}
	}
	fmt.Println("\nThe || chain tests different variables (a, b, a, b), so the range-")
	fmt.Println("condition transformation cannot touch it; the extension reorders it")
	fmt.Println("from the joint-outcome counters, putting the hot test first.")
}

func measure(p *ir.Program, input []byte) interp.Stats {
	m := &interp.Machine{Prog: p, Input: input}
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	return m.Stats
}
