// ordering: a standalone tour of the paper's Section 6 algebra. Builds
// the arms of Figure 7's example sequence, evaluates Equations 1 and 2
// for several orderings, runs the Figure 8 selection algorithm, and
// checks it against the exhaustive oracle.
//
//	go run ./examples/ordering
package main

import (
	"fmt"

	"branchreorder/internal/core"
)

func main() {
	// A sequence like the paper's Figure 7: two explicit targets plus a
	// default target owning three ranges. Probabilities are the profile;
	// costs follow Table 1 (2 instructions per bound test, 4 for a range
	// bounded on both ends).
	arms := []core.Arm{
		{R: core.Range{Lo: 10, Hi: 20}, Target: 1, P: 0.05, C: 4, Explicit: true}, // T1
		{R: core.Range{Lo: 40, Hi: 40}, Target: 2, P: 0.10, C: 2, Explicit: true}, // T2
		{R: core.Range{Lo: core.FullRange.Lo, Hi: 9}, Target: 3, P: 0.02, C: 2},   // TD gap
		{R: core.Range{Lo: 21, Hi: 39}, Target: 3, P: 0.63, C: 4},                 // TD gap (hot!)
		{R: core.Range{Lo: 41, Hi: core.FullRange.Hi}, Target: 3, P: 0.20, C: 2},  // TD gap
	}

	fmt.Println("Arms (range, target, probability, cost):")
	for i, a := range arms {
		kind := "default"
		if a.Explicit {
			kind = "explicit"
		}
		fmt.Printf("  %d: %-18v -> T%d  p=%.2f c=%.0f  (%s)\n", i, a.R, a.Target, a.P, a.C, kind)
	}

	origCost := core.SeqCost(arms, []int{0, 1}, []int{2, 3, 4})
	fmt.Printf("\nOriginal order [T1, T2] with TD untested: expected cost %.3f insts/entry\n", origCost)

	allExplicit := core.SeqCost(arms, []int{3, 4, 1, 0, 2}, nil)
	fmt.Printf("Everything explicit, sorted by p/c:        expected cost %.3f insts/entry\n", allExplicit)

	sel := core.Select(arms)
	fmt.Printf("\nFigure 8 selection: cost %.3f\n", sel.Cost)
	fmt.Printf("  test order: %v\n", sel.Explicit)
	fmt.Printf("  left untested (become the fall-through to T%d): %v\n", sel.DefaultTarget, sel.Omitted)

	oracle := core.SelectExhaustive(arms)
	fmt.Printf("\nExhaustive oracle: cost %.3f (order %v, untested %v)\n",
		oracle.Cost, oracle.Explicit, oracle.Omitted)
	if diff := sel.Cost - oracle.Cost; diff < 1e-9 && diff > -1e-9 {
		fmt.Println("Figure 8's O(n log n) procedure found the optimum, as the paper reports.")
	} else {
		fmt.Println("NOTE: heuristic differs from the optimum on this input!")
	}

	// Theorem 3 on a two-arm slice: order by p/c.
	a, b := arms[1], arms[3]
	fmt.Printf("\nTheorem 3 check: p/c(T2)=%.3f vs p/c(hot gap)=%.3f ->\n", a.P/a.C, b.P/b.C)
	fmt.Printf("  [hot, T2] costs %.3f, [T2, hot] costs %.3f\n",
		core.SeqCost([]core.Arm{b, a}, []int{0, 1}, nil),
		core.SeqCost([]core.Arm{a, b}, []int{0, 1}, nil))
}
