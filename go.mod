module branchreorder

go 1.22
