package main

import (
	"bytes"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return out.String(), errw.String(), code
}

// The determinism guard of the worker pool: brbench -j N stdout must be
// byte-identical to serial -j 1 stdout, for a single table and for the
// whole table+figure dump.
func TestParallelOutputMatchesSerial(t *testing.T) {
	for _, sel := range [][]string{
		{"-table", "8"},
		{}, // everything
	} {
		base := append([]string{"-q", "-workloads", "wc,sort,lex"}, sel...)
		serial, _, code := capture(t, append(base, "-j", "1")...)
		if code != 0 {
			t.Fatalf("%v -j 1 exited %d", sel, code)
		}
		parallel, _, code := capture(t, append(base, "-j", "8")...)
		if code != 0 {
			t.Fatalf("%v -j 8 exited %d", sel, code)
		}
		if parallel != serial {
			t.Errorf("%v: -j 8 stdout differs from -j 1 stdout", sel)
		}
		if len(serial) == 0 {
			t.Errorf("%v: empty output", sel)
		}
	}
}

func TestStaticTablesNeedNoBuilds(t *testing.T) {
	out, errw, code := capture(t, "-table", "2")
	if code != 0 || !strings.Contains(out, "Heuristics") {
		t.Fatalf("-table 2: code %d, out %q", code, out)
	}
	if strings.Contains(errw, "builds") {
		t.Errorf("-table 2 ran the engine: %q", errw)
	}
}

func TestSummaryLine(t *testing.T) {
	_, errw, code := capture(t, "-workloads", "wc", "-table", "4")
	if code != 0 {
		t.Fatalf("exited %d", code)
	}
	if !strings.Contains(errw, "builds") || !strings.Contains(errw, "cache hits") {
		t.Errorf("missing timing/cache summary on stderr: %q", errw)
	}
	_, errw, code = capture(t, "-q", "-workloads", "wc", "-table", "4")
	if code != 0 {
		t.Fatalf("-q exited %d", code)
	}
	if errw != "" {
		t.Errorf("-q still wrote to stderr: %q", errw)
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, code := capture(t, "-workloads", "nosuch", "-table", "4"); code == 0 {
		t.Error("unknown workload accepted")
	}
	if _, _, code := capture(t, "-workloads", ",", "-table", "4"); code == 0 {
		t.Error("empty workload list accepted")
	}
	if _, _, code := capture(t, "-workloads", "wc", "-table", "99"); code == 0 {
		t.Error("unknown table accepted")
	}
	if _, _, code := capture(t, "-workloads", "wc", "-figure", "9"); code == 0 {
		t.Error("unknown figure accepted")
	}
	if _, _, code := capture(t, "-nosuchflag"); code != 2 {
		t.Error("bad flag not rejected with usage exit code")
	}
}

// The ablation study must run through the shared engine and render.
func TestAblationViaEngine(t *testing.T) {
	out, _, code := capture(t, "-q", "-ablation", "-workloads", "wc,sort")
	if code != 0 {
		t.Fatalf("exited %d", code)
	}
	for _, want := range []string{"no-cmp-reuse", "wc", "sort"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation table missing %q:\n%s", want, out)
		}
	}
}
