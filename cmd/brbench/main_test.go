package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
)

func capture(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return out.String(), errw.String(), code
}

// The determinism guard of the worker pool: brbench -j N stdout must be
// byte-identical to serial -j 1 stdout, for a single table and for the
// whole table+figure dump.
func TestParallelOutputMatchesSerial(t *testing.T) {
	for _, sel := range [][]string{
		{"-table", "8"},
		{}, // everything
	} {
		base := append([]string{"-q", "-workloads", "wc,sort,lex"}, sel...)
		serial, _, code := capture(t, append(base, "-j", "1")...)
		if code != 0 {
			t.Fatalf("%v -j 1 exited %d", sel, code)
		}
		parallel, _, code := capture(t, append(base, "-j", "8")...)
		if code != 0 {
			t.Fatalf("%v -j 8 exited %d", sel, code)
		}
		if parallel != serial {
			t.Errorf("%v: -j 8 stdout differs from -j 1 stdout", sel)
		}
		if len(serial) == 0 {
			t.Errorf("%v: empty output", sel)
		}
	}
}

func TestStaticTablesNeedNoBuilds(t *testing.T) {
	out, errw, code := capture(t, "-table", "2")
	if code != 0 || !strings.Contains(out, "Heuristics") {
		t.Fatalf("-table 2: code %d, out %q", code, out)
	}
	if strings.Contains(errw, "builds") {
		t.Errorf("-table 2 ran the engine: %q", errw)
	}
}

func TestSummaryLine(t *testing.T) {
	_, errw, code := capture(t, "-workloads", "wc", "-table", "4")
	if code != 0 {
		t.Fatalf("exited %d", code)
	}
	if !strings.Contains(errw, "builds") || !strings.Contains(errw, "cache hits") {
		t.Errorf("missing timing/cache summary on stderr: %q", errw)
	}
	_, errw, code = capture(t, "-q", "-workloads", "wc", "-table", "4")
	if code != 0 {
		t.Fatalf("-q exited %d", code)
	}
	if errw != "" {
		t.Errorf("-q still wrote to stderr: %q", errw)
	}
}

func TestBadInputs(t *testing.T) {
	if _, _, code := capture(t, "-workloads", "nosuch", "-table", "4"); code == 0 {
		t.Error("unknown workload accepted")
	}
	if _, _, code := capture(t, "-workloads", ",", "-table", "4"); code == 0 {
		t.Error("empty workload list accepted")
	}
	if _, _, code := capture(t, "-workloads", "wc", "-table", "99"); code == 0 {
		t.Error("unknown table accepted")
	}
	if _, _, code := capture(t, "-workloads", "wc", "-figure", "9"); code == 0 {
		t.Error("unknown figure accepted")
	}
	if _, _, code := capture(t, "-nosuchflag"); code != 2 {
		t.Error("bad flag not rejected with usage exit code")
	}
}

// Two exported shards merged back together must render byte-identically
// to a single-process run, with zero builds in the merge step.
func TestShardExportMergeMatchesSingleProcess(t *testing.T) {
	dir := t.TempDir()
	s0, s1 := filepath.Join(dir, "s0.json"), filepath.Join(dir, "s1.json")
	base := []string{"-q", "-workloads", "wc,sort,lex"}

	single, _, code := capture(t, base...)
	if code != 0 {
		t.Fatalf("single-process run exited %d", code)
	}
	if _, _, code := capture(t, append(base, "-shard", "0/2", "-export", s0)...); code != 0 {
		t.Fatalf("shard 0/2 exited %d", code)
	}
	if _, _, code := capture(t, append(base, "-shard", "1/2", "-export", s1)...); code != 0 {
		t.Fatalf("shard 1/2 exited %d", code)
	}
	merged, stderr, code := capture(t, "-workloads", "wc,sort,lex", "-merge", s0+","+s1)
	if code != 0 {
		t.Fatalf("merge exited %d: %s", code, stderr)
	}
	if merged != single {
		t.Errorf("merged stdout differs from single-process stdout")
	}
	if !strings.Contains(stderr, "0 builds") {
		t.Errorf("merge rebuilt jobs the shards already measured: %q", stderr)
	}
	// The shards' own cache activity must round-trip through the export
	// files into the merged summary: 9 jobs built across both shards.
	if !strings.Contains(stderr, "merged shards: 9 builds") {
		t.Errorf("merged summary does not account for shard activity: %q", stderr)
	}
}

// The ablation study must shard and merge like the suite: the merged
// table byte-identical to the direct one, with zero rebuilds.
func TestAblationShardMergeMatchesDirect(t *testing.T) {
	dir := t.TempDir()
	a0, a1 := filepath.Join(dir, "a0.json"), filepath.Join(dir, "a1.json")
	base := []string{"-q", "-ablation", "-workloads", "wc,sort"}

	direct, _, code := capture(t, base...)
	if code != 0 {
		t.Fatalf("direct ablation exited %d", code)
	}
	if _, _, code := capture(t, append(base, "-shard", "0/2", "-export", a0)...); code != 0 {
		t.Fatalf("ablation shard 0/2 exited %d", code)
	}
	if _, _, code := capture(t, append(base, "-shard", "1/2", "-export", a1)...); code != 0 {
		t.Fatalf("ablation shard 1/2 exited %d", code)
	}
	merged, stderr, code := capture(t, "-ablation", "-workloads", "wc,sort", "-merge", a0+","+a1)
	if code != 0 {
		t.Fatalf("ablation merge exited %d: %s", code, stderr)
	}
	if merged != direct {
		t.Errorf("merged ablation table differs from the direct one:\n--- merged ---\n%s--- direct ---\n%s", merged, direct)
	}
	if !strings.Contains(stderr, "brbench: 0 builds") {
		t.Errorf("ablation merge rebuilt sharded jobs: %q", stderr)
	}
}

// A second run against a warm -cache-dir must execute zero builds and
// print identical tables.
func TestCacheDirWarmRun(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-workloads", "wc,sort", "-cache-dir", dir, "-table", "4"}
	cold, coldErr, code := capture(t, args...)
	if code != 0 {
		t.Fatalf("cold run exited %d", code)
	}
	if !strings.Contains(coldErr, "disk hits") || !strings.Contains(coldErr, "disk misses") {
		t.Errorf("summary missing disk-tier counters: %q", coldErr)
	}
	warm, warmErr, code := capture(t, args...)
	if code != 0 {
		t.Fatalf("warm run exited %d", code)
	}
	if warm != cold {
		t.Errorf("warm-cache stdout differs from cold stdout")
	}
	if !strings.Contains(warmErr, "brbench: 0 builds") {
		t.Errorf("warm run still built: %q", warmErr)
	}
	if strings.Contains(warmErr, "0 disk hits") {
		t.Errorf("warm run served nothing from disk: %q", warmErr)
	}
}

// -json must dump one record per (heuristic set, workload) pair in the
// export schema.
func TestJSONDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.json")
	_, _, code := capture(t, "-q", "-workloads", "wc,sort", "-table", "4", "-json", path)
	if code != 0 {
		t.Fatalf("exited %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  int `json:"schema"`
		Records []struct {
			Workload string          `json:"workload"`
			Set      int             `json:"set"`
			Options  json.RawMessage `json:"options"`
			Base     json.RawMessage `json:"base"`
			Reord    json.RawMessage `json:"reord"`
			Static   int64           `json:"staticBase"`
		} `json:"records"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if doc.Schema == 0 {
		t.Error("-json output missing schema version")
	}
	if want := 3 * 2; len(doc.Records) != want { // 3 sets × 2 workloads
		t.Errorf("%d records, want %d", len(doc.Records), want)
	}
	for _, r := range doc.Records {
		if r.Workload == "" || r.Base == nil || r.Reord == nil || r.Static <= 0 {
			t.Errorf("incomplete record: %+v", r)
		}
	}
}

// An unknown -workloads name must fail listing the valid roster.
func TestUnknownWorkloadListsRoster(t *testing.T) {
	_, stderr, code := capture(t, "-workloads", "nosuch", "-table", "4")
	if code == 0 {
		t.Fatal("unknown workload accepted")
	}
	for _, want := range []string{`"nosuch"`, "valid workloads", "wc", "yacc", "hyphen"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("error does not mention %q: %q", want, stderr)
		}
	}
}

func TestShardFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-shard", "0/2"},                            // -shard without -export
		{"-shard", "2/2", "-export", "x.json"},       // index out of range
		{"-shard", "0-2", "-export", "x.json"},       // malformed
		{"-shard", "0/2/9", "-export", "x.json"},     // trailing junk
		{"-shard", "-1/2", "-export", "x.json"},      // negative
		{"-merge", "a.json", "-export", "b.json"},    // merge+export
		{"-merge", "a.json", "-shard", "0/2"},        // merge+shard
		{"-export", "x.json", "-table", "4"},         // export renders nothing
		{"-ablation", "-json", "x.json"},             // ablation+json
		{"-cache-gc", "1h"},                          // gc without a cache dir
		{"-cache-gc", "-1h", "-cache-dir", t.TempDir()}, // negative age
		{"-store-url", "not a url", "-table", "4"},   // unusable store URL
		{"-merge", filepath.Join(t.TempDir(), "missing.json")}, // unreadable shard
	}
	for _, args := range cases {
		if _, _, code := capture(t, args...); code == 0 {
			t.Errorf("%v accepted", args)
		}
	}
}

// The acceptance loop of the fleet-wide store: one machine populates a
// brstored server, and a second machine — cold memo, cold disk cache —
// runs with zero builds and byte-identical output.
func TestStoreURLWarmStartsColdCache(t *testing.T) {
	pool, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(storenet.NewServer(pool).Handler())
	defer hs.Close()

	local, _, code := capture(t, "-q", "-workloads", "wc,sort", "-table", "4")
	if code != 0 {
		t.Fatalf("local-only run exited %d", code)
	}

	first, firstErr, code := capture(t, "-workloads", "wc,sort", "-table", "4",
		"-cache-dir", t.TempDir(), "-store-url", hs.URL)
	if code != 0 {
		t.Fatalf("first -store-url run exited %d: %s", code, firstErr)
	}
	if !strings.Contains(firstErr, "remote misses") || !strings.Contains(firstErr, "remote puts") {
		t.Errorf("summary missing remote counters: %q", firstErr)
	}

	second, secondErr, code := capture(t, "-workloads", "wc,sort", "-table", "4",
		"-cache-dir", t.TempDir(), "-store-url", hs.URL)
	if code != 0 {
		t.Fatalf("second -store-url run exited %d: %s", code, secondErr)
	}
	if first != local || second != local {
		t.Errorf("-store-url output differs from local-only output")
	}
	if !strings.Contains(secondErr, "brbench: 0 builds") {
		t.Errorf("second run over a warm pool still built: %q", secondErr)
	}
	if strings.Contains(secondErr, "0 remote hits") || !strings.Contains(secondErr, "remote hits") {
		t.Errorf("second run did not hit the remote store: %q", secondErr)
	}
}

// An unreachable -store-url must cost fallbacks, not the run: output
// stays correct and the summary reports the degradation.
func TestStoreURLDeadServerFallsBack(t *testing.T) {
	local, _, code := capture(t, "-q", "-workloads", "wc", "-table", "4")
	if code != 0 {
		t.Fatalf("local-only run exited %d", code)
	}
	out, stderr, code := capture(t, "-workloads", "wc", "-table", "4",
		"-store-url", "http://127.0.0.1:1", "-store-timeout", "1s")
	if code != 0 {
		t.Fatalf("run with a dead store exited %d: %s", code, stderr)
	}
	if out != local {
		t.Errorf("dead-store output differs from local-only output")
	}
	if !strings.Contains(stderr, "falling back to local tiers") {
		t.Errorf("missing degradation notice: %q", stderr)
	}
	if strings.Contains(stderr, "0 remote fallbacks") || !strings.Contains(stderr, "remote fallbacks") {
		t.Errorf("summary does not report the fallbacks: %q", stderr)
	}
}

// -cache-gc must evict entries older than the bound before the run, so
// the evicted jobs rebuild and the summary shows the collection.
func TestCacheGCFlag(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-workloads", "wc", "-cache-dir", dir, "-table", "4"}
	if _, _, code := capture(t, args...); code != 0 {
		t.Fatal("cold run failed")
	}
	// Backdate every entry beyond the GC bound. The cold run stores one
	// build record and one stage-2 profile record per heuristic set.
	old := time.Now().Add(-48 * time.Hour)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		return os.Chtimes(path, old, old)
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stderr, code := capture(t, append(args, "-cache-gc", "24h")...)
	if code != 0 {
		t.Fatalf("gc run exited %d", code)
	}
	if !strings.Contains(stderr, "cache gc evicted 6 of 6 entries") {
		t.Errorf("gc summary missing or wrong: %q", stderr)
	}
	if !strings.Contains(stderr, "3 builds") {
		t.Errorf("evicted jobs were not rebuilt: %q", stderr)
	}
}

// The ablation study must run through the shared engine and render.
func TestAblationViaEngine(t *testing.T) {
	out, _, code := capture(t, "-q", "-ablation", "-workloads", "wc,sort")
	if code != 0 {
		t.Fatalf("exited %d", code)
	}
	for _, want := range []string{"no-cmp-reuse", "wc", "sort"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation table missing %q:\n%s", want, out)
		}
	}
}
