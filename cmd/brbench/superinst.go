package main

import (
	"fmt"
	"io"

	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/randprog"
	"branchreorder/internal/workload"
)

// Random-CFG arm of the mining corpus: the same generator the engine
// differential suite fuzzes with, so pattern selection is not
// overfitted to the roster's code shapes. Seeds and inputs are fixed —
// the report is reproducible byte-for-byte.
const (
	superinstRandProgs = 40
	superinstRandSteps = 1 << 15
)

// runSuperinstReport mines the dynamic adjacent-op n-grams of the
// selected workloads (compiled exactly the way the Interp benchmarks
// measure them) plus the random-CFG corpus, and prints the ranked
// pattern table that justifies the curated fusion set in
// internal/interp, with that set's measured dynamic coverage.
func runSuperinstReport(ws []workload.Workload, stdout, stderr io.Writer) int {
	total := interp.NewMineResult()
	type row struct {
		name string
		res  *interp.MineResult
	}
	rows := make([]row, 0, len(ws)+1)
	for _, w := range ws {
		front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true})
		if err != nil {
			fmt.Fprintf(stderr, "brbench: %s: %v\n", w.Name, err)
			return 1
		}
		r := interp.NewMineResult()
		if err := r.Mine(front.Prog, w.Test(), 0); err != nil {
			fmt.Fprintf(stderr, "brbench: %s: %v\n", w.Name, err)
			return 1
		}
		rows = append(rows, row{w.Name, r})
		total.Merge(r)
	}
	randRes := interp.NewMineResult()
	for seed := 0; seed < superinstRandProgs; seed++ {
		p := randprog.New(uint64(seed))
		if err := randRes.Mine(p, workload.FuzzInput(uint64(seed)+1000, 200), superinstRandSteps); err != nil {
			fmt.Fprintf(stderr, "brbench: random cfg seed %d: %v\n", seed, err)
			return 1
		}
	}
	rows = append(rows, row{"random-cfgs", randRes})
	total.Merge(randRes)

	fmt.Fprintf(stdout, "Superinstruction mining report\n")
	fmt.Fprintf(stdout, "corpus: %d workload programs (heuristic set I, optimized, test inputs) + %d random CFGs (seeds 0-%d)\n",
		len(ws), superinstRandProgs, superinstRandProgs-1)
	fmt.Fprintf(stdout, "dynamic dispatches observed: %d\n\n", total.Dispatches())

	fmt.Fprintf(stdout, "Top adjacent pairs by dynamic weight:\n")
	fmt.Fprintf(stdout, "  %-22s %14s %7s\n", "pattern", "count", "share")
	for _, pc := range total.TopGrams(2, 20) {
		fmt.Fprintf(stdout, "  %-22s %14d %6.2f%%\n", pc.Pattern, pc.Count, pc.Share)
	}
	fmt.Fprintf(stdout, "\nTop adjacent triples by dynamic weight:\n")
	fmt.Fprintf(stdout, "  %-22s %14s %7s\n", "pattern", "count", "share")
	for _, pc := range total.TopGrams(3, 12) {
		fmt.Fprintf(stdout, "  %-22s %14d %6.2f%%\n", pc.Pattern, pc.Count, pc.Share)
	}
	fmt.Fprintf(stdout, "\nTop adjacent quads by dynamic weight:\n")
	fmt.Fprintf(stdout, "  %-22s %14s %7s\n", "pattern", "count", "share")
	for _, pc := range total.TopGrams(4, 8) {
		fmt.Fprintf(stdout, "  %-22s %14d %6.2f%%\n", pc.Pattern, pc.Count, pc.Share)
	}
	fmt.Fprintf(stdout, "\nTop adjacent quints by dynamic weight:\n")
	fmt.Fprintf(stdout, "  %-26s %14s %7s\n", "pattern", "count", "share")
	for _, pc := range total.TopGrams(5, 8) {
		fmt.Fprintf(stdout, "  %-26s %14d %6.2f%%\n", pc.Pattern, pc.Count, pc.Share)
	}

	fmt.Fprintf(stdout, "\nCurated fusion set, matched greedily as Decode fuses:\n")
	fmt.Fprintf(stdout, "  %-22s %14s %7s\n", "pattern", "count", "share")
	for _, pc := range total.CuratedDynamic() {
		fmt.Fprintf(stdout, "  %-22s %14d %6.2f%%\n", pc.Pattern, pc.Count, pc.Share)
	}
	fmt.Fprintf(stdout, "\ndynamic coverage: %.1f%% of dispatches execute inside a superinstruction\n",
		total.DynamicCoverage())
	fmt.Fprintf(stdout, "dispatch reduction: %.1f%% of dispatches eliminated\n\n", total.DispatchReduction())

	fmt.Fprintf(stdout, "Residual dispatches outside any superinstruction, by op:\n")
	fmt.Fprintf(stdout, "  %-22s %14s %7s\n", "op", "count", "share")
	for _, pc := range total.Residual(12) {
		fmt.Fprintf(stdout, "  %-22s %14d %6.2f%%\n", pc.Pattern, pc.Count, pc.Share)
	}

	fmt.Fprintf(stdout, "Per-program dynamic coverage:\n")
	for _, r := range rows {
		fmt.Fprintf(stdout, "  %-12s %12d dispatches  %5.1f%% covered  %5.1f%% eliminated\n",
			r.name, r.res.Dispatches(), r.res.DynamicCoverage(), r.res.DispatchReduction())
	}
	return 0
}
