package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// The profile study must shard and merge like the suite and the
// ablation: the merged table byte-identical to the direct one, with
// zero rebuilds, and the stage summary must surface the sampled
// training runs.
func TestProfileStudyShardMergeMatchesDirect(t *testing.T) {
	dir := t.TempDir()
	p0, p1 := filepath.Join(dir, "p0.json"), filepath.Join(dir, "p1.json")
	base := []string{"-q", "-profile-study", "-profile-rates", "1,64", "-workloads", "wc,sort"}

	direct, dstderr, code := capture(t, base[1:]...)
	if code != 0 {
		t.Fatalf("direct study exited %d: %s", code, dstderr)
	}
	if !strings.Contains(dstderr, "sampled training runs") {
		t.Errorf("summary does not count sampled training runs: %q", dstderr)
	}
	if _, _, code := capture(t, append(base, "-shard", "0/2", "-export", p0)...); code != 0 {
		t.Fatalf("shard 0/2 exited %d", code)
	}
	if _, _, code := capture(t, append(base, "-shard", "1/2", "-export", p1)...); code != 0 {
		t.Fatalf("shard 1/2 exited %d", code)
	}
	merged, stderr, code := capture(t, "-profile-study", "-profile-rates", "1,64",
		"-workloads", "wc,sort", "-merge", p0+","+p1)
	if code != 0 {
		t.Fatalf("merge exited %d: %s", code, stderr)
	}
	if merged != direct {
		t.Errorf("merged study differs from direct study:\n--- merged ---\n%s\n--- direct ---\n%s", merged, direct)
	}
	if !strings.Contains(stderr, "brbench: 0 builds") {
		t.Errorf("merge rebuilt jobs the shards already measured: %q", stderr)
	}
}

func TestProfileStudyFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"rates without study": {"-profile-rates", "1,8", "-workloads", "wc"},
		"seed without study":  {"-profile-seed", "7", "-workloads", "wc"},
		"bias without study":  {"-profile-bias", "5", "-workloads", "wc"},
		"study with ablation": {"-profile-study", "-ablation", "-workloads", "wc"},
		"study with table":    {"-profile-study", "-table", "4", "-workloads", "wc"},
		"study with json":     {"-profile-study", "-json", "x.json", "-workloads", "wc"},
		"study with merge":    {"-profile-study", "-profile-merge", "-workloads", "wc"},
		"study on the farm":   {"-profile-study", "-enqueue", "http://x", "-workloads", "wc"},
		"merge without store": {"-profile-merge", "-workloads", "wc"},
		"garbage rates":       {"-profile-study", "-profile-rates", "1,zap", "-workloads", "wc"},
		"zero rate":           {"-profile-study", "-profile-rates", "1,0", "-workloads", "wc"},
		"no reference rate":   {"-profile-study", "-profile-rates", "8,64", "-workloads", "wc"},
	} {
		if _, _, code := capture(t, args...); code == 0 {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Two -profile-merge runs over one cache directory accumulate profile
// wisdom: the second run's fresh training runs fold in the first run's
// contributions and say so in the stage summary.
func TestProfileMergeWarmStart(t *testing.T) {
	dir := t.TempDir()
	if _, stderr, code := capture(t, "-workloads", "wc", "-cache-dir", dir, "-profile-merge"); code != 0 {
		t.Fatalf("first run exited %d: %s", code, stderr)
	}
	// The ablation trains the same detection configuration over variants
	// the whole-build tier has not seen, so it must reuse the suite
	// run's merged profiles.
	_, stderr, code := capture(t, "-workloads", "wc", "-cache-dir", dir, "-profile-merge", "-ablation")
	if code != 0 {
		t.Fatalf("second run exited %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "merged-profile reuses") {
		t.Errorf("warm run did not reuse merged profiles: %q", stderr)
	}
}
