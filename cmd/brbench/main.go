// Command brbench regenerates the paper's evaluation. With no flags it
// runs the full suite (17 workloads × 3 heuristic sets) and prints every
// table and figure; -table and -figure select individual experiments.
// Builds and measurements run on a bounded worker pool (-j, default
// GOMAXPROCS) and are memoized, so the full suite compiles each
// (workload, heuristic set) pair exactly once and every table and figure
// renders from the shared cache; output is byte-identical for any -j.
//
// With -cache-dir, results also persist in a content-addressed on-disk
// store, so a second invocation over unchanged inputs executes zero
// build+measure jobs. The job matrix shards across machines: -shard i/n
// runs one deterministic partition and -export writes its measurements;
// -merge loads exported shards and renders the full tables byte-identical
// to a single-process run. Both work for -ablation too. With -store-url,
// a fleet-shared brstored server becomes a third cache tier behind the
// memo and the disk store: local misses are fetched remotely, fresh
// builds are uploaded, and any remote failure falls back to the local
// tiers without failing the run.
//
// Against a brstored -queue coordinator the same binary self-organizes
// into a build farm — no hand-chosen shards, stragglers re-offered after
// one lease TTL: -enqueue submits the matrix, any number of -worker
// processes pull jobs under TTL leases, and -collect waits for the drain
// and renders output byte-identical to a single-process run.
//
//	brbench                 # everything
//	brbench -j 4            # same, at most 4 concurrent builds
//	brbench -table 4        # dynamic frequency measurements
//	brbench -figure 13      # sequence lengths under Heuristic Set III
//	brbench -workloads wc,sort -table 8   # a subset of the roster
//	brbench -cache-dir ~/.cache/brbench   # warm-start later runs
//	brbench -cache-dir D -cache-gc 720h   # evict month-old entries first
//	brbench -store-url http://build42:8370  # share results fleet-wide
//	brbench -shard 0/2 -export s0.json    # machine A's half of the matrix
//	brbench -shard 1/2 -export s1.json    # machine B's half
//	brbench -merge s0.json,s1.json        # full tables from both shards
//	brbench -json runs.json               # machine-readable measurements
//	brbench -enqueue http://build42:8370  # submit the matrix to the farm
//	brbench -worker http://build42:8370   # pull and build jobs until drained
//	brbench -collect http://build42:8370  # assemble the farm's full output
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"branchreorder/internal/bench"
	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/sim"
	"branchreorder/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so tests can assert the
// parallel engine's output byte-for-byte against the serial one, and the
// shard/merge path against the single-process one.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("brbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table     = fs.Int("table", 0, "render only this table (2-8)")
		figure    = fs.Int("figure", 0, "render only this figure (11-13)")
		ablation  = fs.Bool("ablation", false, "run the design-choice ablation study instead")
		profStudy = fs.Bool("profile-study", false, "run the profile-quality study (sampled profiles scored against exact ones, by sample rate and train/test drift) instead")
		profRates = fs.String("profile-rates", "1,8,64,512", "comma-separated sample rates for -profile-study (1 is the exact reference and must be present)")
		profSeed  = fs.Uint64("profile-seed", 1, "deterministic sampling seed for -profile-study")
		profBias  = fs.Uint64("profile-bias", 0, "fault injection for -profile-study: corrupt every sampled sequence's first arm count by this much")
		profMerge = fs.Bool("profile-merge", false, "fold every training run into a persistent merged-profile record and train from the decayed fold (needs -cache-dir or -store-url)")
		quiet     = fs.Bool("q", false, "suppress progress output and the timing summary")
		jobs      = fs.Int("j", 0, "max concurrent build+measure jobs (<=0 means GOMAXPROCS)")
		workloads = fs.String("workloads", "", "comma-separated workload subset (default: all 17)")
		cacheDir  = fs.String("cache-dir", "", "persist build+measure results in this directory")
		shardFlag = fs.String("shard", "", "run only partition i of n of the job matrix, written i/n (requires -export)")
		export    = fs.String("export", "", "write the run's measurements to this file instead of rendering tables")
		merge     = fs.String("merge", "", "comma-separated exported shard files to load before rendering")
		jsonOut   = fs.String("json", "", "also write every measured run to this file as JSON")
		storeURL  = fs.String("store-url", "", "fleet-shared brstored result store (third cache tier behind -cache-dir)")
		storeTO   = fs.Duration("store-timeout", 10*time.Second, "per-request timeout for -store-url operations")
		enqueue   = fs.String("enqueue", "", "submit the job matrix to this brstored -queue coordinator and exit")
		workerURL = fs.String("worker", "", "run as a build-farm worker: lease jobs from this coordinator URL until drained")
		collect   = fs.String("collect", "", "wait for the farm at this coordinator URL to drain, then render from its store")
		workerID  = fs.String("worker-id", "", "worker identity reported to the coordinator (default hostname-pid)")
		farmPoll  = fs.Duration("farm-poll", 500*time.Millisecond, "poll interval while waiting on the farm queue (-worker idle, -collect)")
		dieAfter  = fs.Int("die-after-leases", 0, "fault injection: exit without completing after acquiring this many leases (requires -worker)")
		collectTO = fs.Duration("collect-timeout", 10*time.Minute, "-collect gives up if the farm has not drained after this long")
		cacheGC   = fs.Duration("cache-gc", 0, "before running, evict -cache-dir entries older than this age")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file at exit")
		noFuse    = fs.Bool("no-fuse", false, "measure on the unfused decode (superinstructions off) — a differential-debugging escape hatch; results are byte-identical, only speed changes")
		engName   = fs.String("engine", "fast", "execution backend for measurements and training runs: fast, closure, or reference — results are byte-identical, only speed and the engine counters change")
		superinst = fs.Bool("superinst-report", false, "mine dynamic adjacent-op patterns over the selected workloads plus random CFGs and print the ranked table with the curated fusion set's coverage")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "brbench:", err)
		return 1
	}

	// Profiling hooks for the perf workflow: the CPU profile covers the
	// whole run (builds and rendering), the heap profile is a snapshot
	// after a final GC, when only long-lived allocations remain.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(stderr, "brbench:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "brbench:", err)
			}
			f.Close()
		}()
	}

	shardIdx, shardN, err := parseShard(*shardFlag)
	if err != nil {
		return fail(err)
	}
	measureEngine, err := sim.ParseEngine(*engName)
	if err != nil {
		return fail(err)
	}
	farmRoles := 0
	for _, u := range []string{*enqueue, *workerURL, *collect} {
		if u != "" {
			farmRoles++
		}
	}
	switch {
	case farmRoles > 1:
		return fail(fmt.Errorf("-enqueue, -worker and -collect are different farm roles; pick one"))
	case (*enqueue != "" || *workerURL != "") && (*table != 0 || *figure != 0 || *jsonOut != "" || *export != "" || *merge != "" || shardN > 0):
		return fail(fmt.Errorf("-enqueue and -worker render nothing; drop -table/-figure/-json/-export/-merge/-shard"))
	case *collect != "" && (*export != "" || *merge != "" || shardN > 0):
		return fail(fmt.Errorf("-collect renders from the farm store; it cannot be combined with -shard/-export/-merge"))
	case *dieAfter < 0:
		return fail(fmt.Errorf("-die-after-leases needs a positive count, got %d", *dieAfter))
	case *dieAfter > 0 && *workerURL == "":
		return fail(fmt.Errorf("-die-after-leases is worker fault injection; add -worker URL"))
	case shardN > 0 && *export == "":
		return fail(fmt.Errorf("-shard runs a partial job matrix, which cannot render tables: add -export FILE"))
	case *merge != "" && (*export != "" || shardN > 0):
		return fail(fmt.Errorf("-merge renders from already-exported shards; it cannot be combined with -shard/-export"))
	case *export != "" && (*table != 0 || *figure != 0):
		return fail(fmt.Errorf("-export serializes measurements and renders nothing; drop -table/-figure"))
	case *ablation && *jsonOut != "":
		return fail(fmt.Errorf("-ablation renders no suite to dump; drop -json"))
	case *cacheGC != 0 && *cacheDir == "":
		return fail(fmt.Errorf("-cache-gc collects the local store; add -cache-dir DIR"))
	case *cacheGC < 0:
		return fail(fmt.Errorf("-cache-gc needs a positive age, got %v", *cacheGC))
	case *profStudy && (*ablation || *table != 0 || *figure != 0 || *jsonOut != ""):
		return fail(fmt.Errorf("-profile-study renders its own table; drop -ablation/-table/-figure/-json"))
	case *profStudy && (*enqueue != "" || *workerURL != "" || *collect != ""):
		return fail(fmt.Errorf("-profile-study does not run on the farm; drop -enqueue/-worker/-collect"))
	case *profStudy && *profMerge:
		return fail(fmt.Errorf("-profile-study scores fresh training runs; -profile-merge would make its table depend on store history"))
	case !*profStudy && (*profRates != "1,8,64,512" || *profSeed != 1 || *profBias != 0):
		return fail(fmt.Errorf("-profile-rates, -profile-seed and -profile-bias configure the study; add -profile-study"))
	case *profMerge && *cacheDir == "" && *storeURL == "" && *workerURL == "" && *collect == "":
		return fail(fmt.Errorf("-profile-merge persists profiles across runs; add -cache-dir DIR or -store-url URL"))
	case *superinst && (*ablation || *profStudy || *table != 0 || *figure != 0 || *jsonOut != "" || *export != "" || *merge != "" || shardN > 0 || farmRoles > 0):
		return fail(fmt.Errorf("-superinst-report renders its own table from fresh mining runs; drop the other modes"))
	case *superinst && *noFuse:
		return fail(fmt.Errorf("-superinst-report mines the unfused stream already; drop -no-fuse"))
	}
	var rates []int
	if *profStudy {
		if rates, err = parseRates(*profRates); err != nil {
			return fail(err)
		}
	}

	names, ws, err := selectWorkloads(*workloads)
	if err != nil {
		return fail(err)
	}

	// The mining report measures on the reference interpreter directly;
	// no engine, no caches.
	if *superinst {
		return runSuperinstReport(ws, stdout, stderr)
	}

	// Tables 2 and 3 need no measurements.
	switch *table {
	case 2:
		fmt.Fprint(stdout, bench.Table2())
		return 0
	case 3:
		fmt.Fprint(stdout, bench.Table3())
		return 0
	}

	// -profile-merge is a cross-cutting switch: every enumerated job's
	// training runs in merge mode, whichever path enumerates them.
	var mod func(pipeline.Options) pipeline.Options
	if *profMerge {
		mod = func(o pipeline.Options) pipeline.Options {
			o.Profile.Merge = true
			return o
		}
	}

	// -enqueue only talks to the coordinator; no engine, no rendering.
	if *enqueue != "" {
		jobList := bench.SuiteJobs(ws)
		if *ablation {
			jobList = bench.AblationJobs(lower.SetIII, ws)
		}
		return runEnqueue(*enqueue, *storeTO, bench.ModJobs(jobList, mod), stdout, stderr)
	}

	var progress io.Writer = stderr
	if *quiet {
		progress = nil
	}
	engine := bench.NewEngine(*jobs, progress)
	engine.SetMeasure(sim.Options{NoFuse: *noFuse, Engine: measureEngine})
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			return fail(err)
		}
		if *cacheGC > 0 {
			res, err := st.GC(*cacheGC, 0)
			if err != nil {
				return fail(err)
			}
			if !*quiet {
				fmt.Fprintf(stderr, "brbench: cache gc evicted %d of %d entries, %d bytes kept\n",
					res.Evicted, res.Scanned, res.Bytes)
			}
		}
		engine.UseStore(st)
	}
	// A farm worker or collector talks to the coordinator's result store
	// too: the queue carries job identities, the store carries results.
	if *storeURL == "" {
		if *workerURL != "" {
			*storeURL = *workerURL
		} else if *collect != "" {
			*storeURL = *collect
		}
	}
	var remote *storenet.Client
	if *storeURL != "" {
		logf := func(string, ...interface{}) {}
		if !*quiet {
			logf = func(format string, args ...interface{}) { fmt.Fprintf(stderr, format, args...) }
		}
		client, err := storenet.NewClient(*storeURL, storenet.ClientConfig{Timeout: *storeTO, Logf: logf})
		if err != nil {
			return fail(err)
		}
		remote = client
		engine.UseRemote(client)
	}
	start := time.Now()
	ctx := context.Background()
	var shardStats *store.TierStats // cache activity totalled from -merge inputs
	defer func() {
		if !*quiet {
			st := engine.Stats()
			fmt.Fprintf(stderr, "brbench: %d builds, %d cache hits", st.Builds, st.Hits)
			if st.Seeded > 0 {
				fmt.Fprintf(stderr, ", %d seeded", st.Seeded)
			}
			if *cacheDir != "" {
				fmt.Fprintf(stderr, ", %d disk hits, %d disk misses, %d disk invalidated",
					st.DiskHits, st.DiskMisses, st.DiskInvalid)
			}
			if *storeURL != "" {
				fmt.Fprintf(stderr, ", %d remote hits, %d remote misses, %d remote fallbacks, %d remote puts",
					st.RemoteHits, st.RemoteMisses, st.RemoteFallbacks, st.RemotePuts)
			}
			if shardStats != nil {
				fmt.Fprintf(stderr, "; merged shards: %d builds, %d disk hits, %d remote hits, %d remote fallbacks",
					shardStats.Builds, shardStats.DiskHits, shardStats.RemoteHits, shardStats.RemoteFallbacks)
			}
			fmt.Fprintf(stderr, ", %.2fs elapsed (-j %d)\n", time.Since(start).Seconds(), engine.Jobs())
			if st.FrontendRuns+st.FrontendHits+st.TrainRuns+st.TrainHits > 0 {
				fmt.Fprintf(stderr, "brbench: stages: %d frontend runs (%d reused), %d training runs (%d reused",
					st.FrontendRuns, st.FrontendHits, st.TrainRuns, st.TrainHits)
				if st.ProfileHits > 0 {
					fmt.Fprintf(stderr, ", %d from store", st.ProfileHits)
				}
				fmt.Fprintf(stderr, ")")
				if st.SampledTrainRuns > 0 {
					fmt.Fprintf(stderr, ", %d sampled training runs", st.SampledTrainRuns)
				}
				if st.ProfileMergeHits > 0 {
					fmt.Fprintf(stderr, ", %d merged-profile reuses", st.ProfileMergeHits)
				}
				fmt.Fprintf(stderr, "\n")
			}
			if st.DecodedOps > 0 {
				fmt.Fprintf(stderr, "brbench: superinstructions: %d fused sites absorbing %d of %d decoded ops (%.1f%% static coverage) across fresh builds\n",
					st.FusedSites, st.FusedOps, st.DecodedOps, 100*float64(st.FusedOps)/float64(st.DecodedOps))
			}
			if st.CompiledFuncs > 0 || st.ClosureFallbacks > 0 {
				fmt.Fprintf(stderr, "brbench: closure compiler: %d funcs compiled into %d closure blocks, %d declined, across fresh builds\n",
					st.CompiledFuncs, st.ClosureBlocks, st.ClosureFallbacks)
			}
			if len(st.BuildSeconds) > 0 {
				names := make([]string, 0, len(st.BuildSeconds))
				total := 0.0
				for name, sec := range st.BuildSeconds {
					names = append(names, name)
					total += sec
				}
				sort.Strings(names)
				fmt.Fprintf(stderr, "brbench: build+measure wall-clock:")
				for i, name := range names {
					sep := " "
					if i > 0 {
						sep = ", "
					}
					fmt.Fprintf(stderr, "%s%s %.2fs", sep, name, st.BuildSeconds[name])
				}
				fmt.Fprintf(stderr, " (total %.2fs)\n", total)
			}
		}
	}()

	if *workerURL != "" {
		id := *workerID
		if id == "" {
			id = defaultWorkerID()
		}
		return runWorker(ctx, engine, remote,
			workerConfig{id: id, poll: *farmPoll, dieAfter: *dieAfter, quiet: *quiet}, stderr)
	}
	if *collect != "" {
		jobList := bench.SuiteJobs(ws)
		if *ablation {
			jobList = bench.AblationJobs(lower.SetIII, ws)
		}
		jobList = bench.ModJobs(jobList, mod)
		if err := collectFarm(ctx, engine, remote, jobList, *collectTO, *farmPoll, *quiet, stderr); err != nil {
			return fail(err)
		}
	}

	// exportRuns measures jobList (or its -shard partition) and writes
	// the records plus this engine's cache counters, so a later -merge
	// can account for every shard's activity.
	exportRuns := func(jobList []bench.Job) int {
		if shardN > 0 {
			jobList = bench.ShardJobs(jobList, shardIdx, shardN)
		}
		runs, err := engine.RunJobs(ctx, jobList)
		if err != nil {
			return fail(err)
		}
		st := engine.Stats()
		if err := writeRecords(*export, bench.Records(runs), &st); err != nil {
			return fail(err)
		}
		return 0
	}

	if *profStudy {
		if *export != "" {
			return exportRuns(bench.ProfileStudyJobs(ws, rates, *profSeed, *profBias))
		}
		if *merge != "" {
			if shardStats, err = loadShards(engine, *merge); err != nil {
				return fail(err)
			}
		}
		rows, err := bench.RunProfileStudyWith(ctx, engine, ws, rates, *profSeed, *profBias)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, bench.ProfileStudyTable(rows))
		return 0
	}

	if *ablation {
		if *export != "" {
			return exportRuns(bench.ModJobs(bench.AblationJobs(lower.SetIII, ws), mod))
		}
		if *merge != "" {
			if shardStats, err = loadShards(engine, *merge); err != nil {
				return fail(err)
			}
		}
		rows, err := bench.RunAblationOpts(ctx, engine, lower.SetIII, names, mod)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, bench.AblationTable(lower.SetIII, rows))
		return 0
	}

	if *export != "" {
		return exportRuns(bench.ModJobs(bench.SuiteJobs(ws), mod))
	}

	if *merge != "" {
		if shardStats, err = loadShards(engine, *merge); err != nil {
			return fail(err)
		}
	}

	suite, err := engine.SuiteOfOpts(ctx, ws, mod)
	if err != nil {
		return fail(err)
	}
	if *jsonOut != "" {
		st := engine.Stats()
		if err := writeRecords(*jsonOut, bench.Records(suite.AllRuns()), &st); err != nil {
			return fail(err)
		}
	}

	switch {
	case *table != 0:
		text, err := tableText(suite, *table)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, text)
	case *figure != 0:
		text, err := suite.Figure(*figure)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, text)
	default:
		fmt.Fprint(stdout, bench.Table2(), "\n")
		fmt.Fprint(stdout, bench.Table3(), "\n")
		for n := 4; n <= 8; n++ {
			text, _ := tableText(suite, n)
			fmt.Fprint(stdout, text, "\n")
		}
		for n := 11; n <= 13; n++ {
			text, _ := suite.Figure(n)
			fmt.Fprint(stdout, text, "\n")
		}
	}
	return 0
}

// parseRates parses the -profile-rates list.
func parseRates(s string) ([]int, error) {
	var rates []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var r int
		if _, err := fmt.Sscanf(part, "%d", &r); err != nil || fmt.Sprintf("%d", r) != part || r < 1 {
			return nil, fmt.Errorf("-profile-rates must be positive integers, got %q", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("-profile-rates selected nothing")
	}
	return rates, nil
}

// parseShard parses "-shard i/n". shardN is 0 when the flag is unset.
func parseShard(s string) (idx, n int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &idx, &n); err != nil || fmt.Sprintf("%d/%d", idx, n) != s {
		return 0, 0, fmt.Errorf("-shard must be i/n (e.g. 0/2), got %q", s)
	}
	if n < 1 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("-shard %q out of range: need 0 <= i < n", s)
	}
	return idx, n, nil
}

// loadShards seeds the engine's cache from every exported shard file, so
// the suite renders without rebuilding anything the shards cover. It
// returns the shards' cache counters totalled together — nil when no
// shard carried stats — so the merged summary accounts for every
// machine's activity, not just this one's.
func loadShards(engine *bench.Engine, files string) (*store.TierStats, error) {
	var total store.TierStats
	haveStats := false
	for _, path := range strings.Split(files, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		recs, stats, err := store.ReadExport(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if stats != nil {
			total.Add(*stats)
			haveStats = true
		}
		for _, rec := range recs {
			w, ok := workload.Named(rec.Workload)
			if !ok {
				return nil, fmt.Errorf("%s: unknown workload %q", path, rec.Workload)
			}
			run, err := bench.RunFromRecord(rec, w)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			engine.Seed(run)
		}
	}
	if !haveStats {
		return nil, nil
	}
	return &total, nil
}

// writeRecords dumps records (and the engine's cache counters) to path
// in the export/-json format.
func writeRecords(path string, recs []*store.Record, stats *store.TierStats) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := store.WriteExport(f, recs, stats)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// selectWorkloads resolves the -workloads flag: empty means the whole
// roster (nil names, so the ablation's default applies too). An unknown
// name fails listing the valid roster, so a typo is self-correcting.
func selectWorkloads(flagVal string) ([]string, []workload.Workload, error) {
	if flagVal == "" {
		return nil, workload.All(), nil
	}
	var names []string
	var ws []workload.Workload
	for _, n := range strings.Split(flagVal, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		w, ok := workload.Named(n)
		if !ok {
			return nil, nil, fmt.Errorf("unknown workload %q; valid workloads: %s", n, rosterNames())
		}
		names = append(names, n)
		ws = append(ws, w)
	}
	if len(ws) == 0 {
		return nil, nil, fmt.Errorf("-workloads selected nothing")
	}
	return names, ws, nil
}

// rosterNames lists every workload name, comma-separated.
func rosterNames() string {
	var sb strings.Builder
	for i, w := range workload.All() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(w.Name)
	}
	return sb.String()
}

func tableText(s *bench.Suite, n int) (string, error) {
	switch n {
	case 2:
		return bench.Table2(), nil
	case 3:
		return bench.Table3(), nil
	case 4:
		return s.Table4(), nil
	case 5:
		return s.Table5(), nil
	case 6:
		return s.Table6(), nil
	case 7:
		return s.Table7(), nil
	case 8:
		return s.Table8(), nil
	default:
		return "", fmt.Errorf("no table %d (have 2-8)", n)
	}
}
