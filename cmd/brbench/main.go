// Command brbench regenerates the paper's evaluation. With no flags it
// runs the full suite (17 workloads × 3 heuristic sets) and prints every
// table and figure; -table and -figure select individual experiments.
// Builds and measurements run on a bounded worker pool (-j, default
// GOMAXPROCS) and are memoized, so the full suite compiles each
// (workload, heuristic set) pair exactly once and every table and figure
// renders from the shared cache; output is byte-identical for any -j.
//
//	brbench                 # everything
//	brbench -j 4            # same, at most 4 concurrent builds
//	brbench -table 4        # dynamic frequency measurements
//	brbench -figure 13      # sequence lengths under Heuristic Set III
//	brbench -workloads wc,sort -table 8   # a subset of the roster
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"branchreorder/internal/bench"
	"branchreorder/internal/lower"
	"branchreorder/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so tests can assert the
// parallel engine's output byte-for-byte against the serial one.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("brbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table     = fs.Int("table", 0, "render only this table (2-8)")
		figure    = fs.Int("figure", 0, "render only this figure (11-13)")
		ablation  = fs.Bool("ablation", false, "run the design-choice ablation study instead")
		quiet     = fs.Bool("q", false, "suppress progress output and the timing summary")
		jobs      = fs.Int("j", 0, "max concurrent build+measure jobs (<=0 means GOMAXPROCS)")
		workloads = fs.String("workloads", "", "comma-separated workload subset (default: all 17)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	names, ws, err := selectWorkloads(*workloads)
	if err != nil {
		fmt.Fprintln(stderr, "brbench:", err)
		return 1
	}

	// Tables 2 and 3 need no measurements.
	switch *table {
	case 2:
		fmt.Fprint(stdout, bench.Table2())
		return 0
	case 3:
		fmt.Fprint(stdout, bench.Table3())
		return 0
	}

	var progress io.Writer = stderr
	if *quiet {
		progress = nil
	}
	engine := bench.NewEngine(*jobs, progress)
	start := time.Now()
	ctx := context.Background()
	defer func() {
		if !*quiet {
			st := engine.Stats()
			fmt.Fprintf(stderr, "brbench: %d builds, %d cache hits, %.2fs elapsed (-j %d)\n",
				st.Builds, st.Hits, time.Since(start).Seconds(), engine.Jobs())
		}
	}()

	if *ablation {
		rows, err := bench.RunAblationWith(ctx, engine, lower.SetIII, names)
		if err != nil {
			fmt.Fprintln(stderr, "brbench:", err)
			return 1
		}
		fmt.Fprint(stdout, bench.AblationTable(lower.SetIII, rows))
		return 0
	}

	suite, err := engine.SuiteOf(ctx, ws)
	if err != nil {
		fmt.Fprintln(stderr, "brbench:", err)
		return 1
	}

	switch {
	case *table != 0:
		text, err := tableText(suite, *table)
		if err != nil {
			fmt.Fprintln(stderr, "brbench:", err)
			return 1
		}
		fmt.Fprint(stdout, text)
	case *figure != 0:
		text, err := suite.Figure(*figure)
		if err != nil {
			fmt.Fprintln(stderr, "brbench:", err)
			return 1
		}
		fmt.Fprint(stdout, text)
	default:
		fmt.Fprint(stdout, bench.Table2(), "\n")
		fmt.Fprint(stdout, bench.Table3(), "\n")
		for n := 4; n <= 8; n++ {
			text, _ := tableText(suite, n)
			fmt.Fprint(stdout, text, "\n")
		}
		for n := 11; n <= 13; n++ {
			text, _ := suite.Figure(n)
			fmt.Fprint(stdout, text, "\n")
		}
	}
	return 0
}

// selectWorkloads resolves the -workloads flag: empty means the whole
// roster (nil names, so the ablation's default applies too).
func selectWorkloads(flagVal string) ([]string, []workload.Workload, error) {
	if flagVal == "" {
		return nil, workload.All(), nil
	}
	var names []string
	var ws []workload.Workload
	for _, n := range strings.Split(flagVal, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		w, ok := workload.Named(n)
		if !ok {
			return nil, nil, fmt.Errorf("unknown workload %q", n)
		}
		names = append(names, n)
		ws = append(ws, w)
	}
	if len(ws) == 0 {
		return nil, nil, fmt.Errorf("-workloads selected nothing")
	}
	return names, ws, nil
}

func tableText(s *bench.Suite, n int) (string, error) {
	switch n {
	case 2:
		return bench.Table2(), nil
	case 3:
		return bench.Table3(), nil
	case 4:
		return s.Table4(), nil
	case 5:
		return s.Table5(), nil
	case 6:
		return s.Table6(), nil
	case 7:
		return s.Table7(), nil
	case 8:
		return s.Table8(), nil
	default:
		return "", fmt.Errorf("no table %d (have 2-8)", n)
	}
}
