// Command brbench regenerates the paper's evaluation. With no flags it
// runs the full suite (17 workloads × 3 heuristic sets) and prints every
// table and figure; -table and -figure select individual experiments.
//
//	brbench                 # everything
//	brbench -table 4        # dynamic frequency measurements
//	brbench -figure 13      # sequence lengths under Heuristic Set III
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"branchreorder/internal/bench"
	"branchreorder/internal/lower"
)

func main() {
	var (
		table    = flag.Int("table", 0, "render only this table (2-8)")
		figure   = flag.Int("figure", 0, "render only this figure (11-13)")
		ablation = flag.Bool("ablation", false, "run the design-choice ablation study instead")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *ablation {
		rows, err := bench.RunAblation(lower.SetIII, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "brbench:", err)
			os.Exit(1)
		}
		fmt.Print(bench.AblationTable(lower.SetIII, rows))
		return
	}

	// Tables 2 and 3 need no measurements.
	switch *table {
	case 2:
		fmt.Print(bench.Table2())
		return
	case 3:
		fmt.Print(bench.Table3())
		return
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	suite, err := bench.RunSuite(progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brbench:", err)
		os.Exit(1)
	}

	switch {
	case *table != 0:
		text, err := tableText(suite, *table)
		if err != nil {
			fmt.Fprintln(os.Stderr, "brbench:", err)
			os.Exit(1)
		}
		fmt.Print(text)
	case *figure != 0:
		text, err := suite.Figure(*figure)
		if err != nil {
			fmt.Fprintln(os.Stderr, "brbench:", err)
			os.Exit(1)
		}
		fmt.Print(text)
	default:
		fmt.Print(bench.Table2(), "\n")
		fmt.Print(bench.Table3(), "\n")
		for n := 4; n <= 8; n++ {
			text, _ := tableText(suite, n)
			fmt.Print(text, "\n")
		}
		for n := 11; n <= 13; n++ {
			text, _ := suite.Figure(n)
			fmt.Print(text, "\n")
		}
	}
}

func tableText(s *bench.Suite, n int) (string, error) {
	switch n {
	case 2:
		return bench.Table2(), nil
	case 3:
		return bench.Table3(), nil
	case 4:
		return s.Table4(), nil
	case 5:
		return s.Table5(), nil
	case 6:
		return s.Table6(), nil
	case 7:
		return s.Table7(), nil
	case 8:
		return s.Table8(), nil
	default:
		return "", fmt.Errorf("no table %d (have 2-8)", n)
	}
}
