// farm.go is brbench's side of the build farm: the three roles that turn
// a brstored -queue coordinator and any number of machines into one
// logical run.
//
//	brbench -enqueue URL   submit the job matrix and exit
//	brbench -worker URL    loop lease → build → complete until drained
//	brbench -collect URL   wait for the drain, then render from the store
//
// Workers build through the engine's usual tiers (memo → disk → remote),
// so a farm is the staged-build pipeline plus a lease protocol — no
// second build path. Results travel through the coordinator's result
// store, never through the queue, which is why -collect renders output
// byte-identical to a single-process run.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"branchreorder/internal/bench"
	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
	"branchreorder/internal/bench/storenet/queue"
	"branchreorder/internal/workload"
)

// jobSpecs converts the engine's job matrix into the queue's wire
// vocabulary.
func jobSpecs(jobs []bench.Job) []queue.JobSpec {
	specs := make([]queue.JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = queue.JobSpec{Workload: j.Workload.Name, Opts: j.Opts}
	}
	return specs
}

// defaultWorkerID identifies this process to the coordinator when
// -worker-id is not given: hostname-pid is unique per farm in practice
// and readable in /metrics.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// runEnqueue submits the job matrix to the coordinator. Re-running it is
// an idempotent resume: jobs already queued, running, or done are
// reported as known, never duplicated.
func runEnqueue(url string, timeout time.Duration, jobs []bench.Job, stdout, stderr io.Writer) int {
	client, err := storenet.NewClient(url, storenet.ClientConfig{Timeout: timeout})
	if err != nil {
		fmt.Fprintln(stderr, "brbench:", err)
		return 1
	}
	resp, err := client.EnqueueJobs(context.Background(), jobSpecs(jobs))
	if err != nil {
		fmt.Fprintln(stderr, "brbench: enqueue:", err)
		return 1
	}
	fmt.Fprintf(stdout, "brbench: enqueued %d jobs (%d already known), queue depth %d\n",
		resp.Accepted, resp.Known, resp.Depth)
	return 0
}

// workerConfig is everything runWorker needs beyond the engine.
type workerConfig struct {
	id       string        // identity reported on every lease and complete
	poll     time.Duration // idle wait between leases when nothing is pending
	dieAfter int           // fault injection: exit without completing after this many leases
	quiet    bool
}

// runWorker is the farm's work loop: lease one job, build it through the
// engine's cache tiers, make sure the result is in the coordinator's
// store, complete the lease; repeat until the queue reports drained. A
// heartbeat goroutine keeps each lease alive for as long as the build
// takes — and cancels the build the moment the coordinator says the
// lease is lost, so a worker that stalled past its TTL stops burning
// cycles on a job someone else now owns.
func runWorker(ctx context.Context, engine *bench.Engine, client *storenet.Client, cfg workerConfig, stderr io.Writer) int {
	logf := func(format string, args ...interface{}) {
		if !cfg.quiet {
			fmt.Fprintf(stderr, format, args...)
		}
	}
	var completed, lost, failed, leases int
	errStreak := 0
	for {
		l, drained, err := client.LeaseJob(ctx, cfg.id)
		if err != nil {
			if ctx.Err() != nil {
				return 1
			}
			errStreak++
			if errStreak >= 60 {
				fmt.Fprintf(stderr, "brbench: worker %s: coordinator unreachable (%v), giving up\n", cfg.id, err)
				return 1
			}
			time.Sleep(cfg.poll)
			continue
		}
		errStreak = 0
		if l == nil {
			if drained {
				break
			}
			time.Sleep(cfg.poll)
			continue
		}
		leases++
		if cfg.dieAfter > 0 && leases >= cfg.dieAfter {
			// Fault injection: vanish while holding the lease — no
			// complete, no heartbeat. The coordinator must re-offer the
			// job after one TTL; the tests and CI assert it does.
			fmt.Fprintf(stderr, "brbench: worker %s: dying after lease %d (fault injection)\n", cfg.id, leases)
			return 0
		}
		w, ok := workload.Named(l.Spec.Workload)
		if !ok {
			// The coordinator validated names at enqueue, so this means
			// version skew between worker and matrix. Fail the attempt so
			// the job can land on a worker that knows it.
			client.CompleteJob(ctx, l.ID, l.Token, cfg.id,
				fmt.Sprintf("unknown workload %q", l.Spec.Workload))
			failed++
			continue
		}
		switch buildOne(ctx, engine, client, cfg.id, l, w, logf) {
		case buildDone:
			completed++
		case buildLost:
			lost++
		case buildFailed:
			failed++
		}
	}
	logf("brbench: worker %s: %d completed, %d failed, %d lost leases; queue drained\n",
		cfg.id, completed, failed, lost)
	if ctx.Err() != nil {
		return 1
	}
	return 0
}

type buildOutcome int

const (
	buildDone buildOutcome = iota
	buildLost
	buildFailed
)

// buildOne runs a single leased job: heartbeat in the background, build
// through the engine, upload the result, complete the lease.
func buildOne(ctx context.Context, engine *bench.Engine, client *storenet.Client, workerID string,
	l *queue.Lease, w workload.Workload, logf func(string, ...interface{})) buildOutcome {

	// Heartbeat at a third of the TTL: two beats can be lost before the
	// lease expires. If the coordinator answers that the lease is gone,
	// cancel the build — its owner is someone else now.
	interval := l.TTL / 3
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	buildCtx, cancelBuild := context.WithCancel(ctx)
	defer cancelBuild()
	var leaseLost atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				err := client.HeartbeatJob(ctx, l.ID, l.Token)
				if errors.Is(err, queue.ErrLeaseConflict) || errors.Is(err, queue.ErrGone) {
					leaseLost.Store(true)
					cancelBuild()
					return
				}
				// Transient errors: keep beating; the lease survives two
				// missed windows.
			}
		}
	}()

	run, buildErr := engine.Get(buildCtx, w, l.Spec.Opts)
	close(stop)
	wg.Wait()
	if leaseLost.Load() {
		logf("brbench: worker %s: lost lease on %s, dropping the build\n", workerID, w.Name)
		return buildLost
	}
	if buildErr != nil {
		if ctx.Err() != nil {
			return buildLost
		}
		client.CompleteJob(ctx, l.ID, l.Token, workerID, buildErr.Error())
		return buildFailed
	}

	// The engine uploads fresh builds on its own; a memo or disk hit
	// skipped that. Re-putting is idempotent (content-addressed), so
	// always make sure the result is in the coordinator's store before
	// declaring the job done — complete-without-result would leave
	// -collect rebuilding what we claim to have built.
	fp := store.Fingerprint(w.Source, bench.TrainInput(w, l.Spec.Opts), w.Test(), l.Spec.Opts)
	if err := client.Put(ctx, fp, run.Record()); err != nil {
		client.CompleteJob(ctx, l.ID, l.Token, workerID, "result upload failed: "+err.Error())
		return buildFailed
	}
	if err := client.CompleteJob(ctx, l.ID, l.Token, workerID, ""); err != nil {
		// A conflict or gone here means the lease expired during upload
		// and someone else finished the job; the build itself is in the
		// store either way.
		logf("brbench: worker %s: complete %s: %v\n", workerID, w.Name, err)
		return buildLost
	}
	return buildDone
}

// collectFarm waits for every enqueued job to reach a terminal state,
// then seeds the engine's memo with the farm's results in one batched
// fetch. Rendering afterwards hits the memo for everything the farm
// built, so the output is byte-identical to a single-process run; any
// result missing from the store (evicted, or a worker that lied) is
// simply rebuilt locally.
func collectFarm(ctx context.Context, engine *bench.Engine, client *storenet.Client, jobs []bench.Job,
	timeout, poll time.Duration, quiet bool, stderr io.Writer) error {

	deadline := time.Now().Add(timeout)
	var counts queue.Counts
	for {
		var err error
		counts, err = client.QueueStatus(ctx)
		if err != nil {
			return fmt.Errorf("farm status: %w", err)
		}
		if counts.Drained {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("farm did not drain within %v: %d pending, %d leased of %d jobs",
				timeout, counts.Pending, counts.Leased, counts.Enqueued)
		}
		time.Sleep(poll)
	}
	if counts.Failed > 0 {
		msg := fmt.Sprintf("farm finished with %d failed jobs:", counts.Failed)
		for _, f := range counts.Failures {
			msg += fmt.Sprintf("\n  %s (%s): %s", f.ID, f.Workload, f.Error)
		}
		return errors.New(msg)
	}

	byFP := make(map[string]bench.Job, len(jobs))
	fps := make([]string, 0, len(jobs))
	for _, j := range jobs {
		fp := store.Fingerprint(j.Workload.Source, bench.TrainInput(j.Workload, j.Opts), j.Workload.Test(), j.Opts)
		if _, ok := byFP[fp]; ok {
			continue
		}
		byFP[fp] = j
		fps = append(fps, fp)
	}
	seeded := 0
	for start := 0; start < len(fps); start += storenet.MaxBatchEntries {
		end := start + storenet.MaxBatchEntries
		if end > len(fps) {
			end = len(fps)
		}
		got, err := client.GetBatch(ctx, fps[start:end])
		if err != nil {
			// The queue drained, so the results exist; a batch failure
			// only costs the prefetch — per-job remote gets (and local
			// rebuilds) still happen below.
			fmt.Fprintf(stderr, "brbench: batch fetch failed (%v); falling back to per-job fetches\n", err)
			break
		}
		for fp, data := range got {
			rec, err := store.Decode(data, fp)
			if err != nil {
				continue // corrupt-entry-as-miss: rebuild locally
			}
			run, err := bench.RunFromRecord(rec, byFP[fp].Workload)
			if err != nil {
				continue
			}
			engine.Seed(run)
			seeded++
		}
	}
	if !quiet {
		fmt.Fprintf(stderr, "brbench: farm drained: %d jobs done by %d workers; %d of %d results collected\n",
			counts.Done, len(counts.Workers), seeded, len(fps))
	}
	return nil
}
