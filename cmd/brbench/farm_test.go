package main

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
	"branchreorder/internal/bench/storenet/queue"
)

// startCoordinator boots an in-process brstored-with-queue: the same
// Server cmd/brstored serves, store-backed, with the work queue attached.
func startCoordinator(t *testing.T, ttl time.Duration) (*storenet.Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := storenet.NewServer(st)
	srv.AttachQueue(queue.New(ttl, 0))
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// The fault-injection contract of the farm, end to end over the whole
// 17-workload roster: a worker that dies holding a lease (no complete,
// no heartbeat) costs the farm exactly one lease TTL — the job is
// re-offered, another worker finishes it, and the collected output is
// byte-identical to a single-process run.
func TestBuildFarmSurvivesWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("full-roster farm run")
	}
	reference, _, code := capture(t, "-q", "-j", "8")
	if code != 0 || len(reference) == 0 {
		t.Fatalf("single-process reference exited %d", code)
	}

	srv, hs := startCoordinator(t, time.Second)
	out, _, code := capture(t, "-enqueue", hs.URL)
	if code != 0 || !strings.Contains(out, "enqueued 51 jobs") {
		t.Fatalf("enqueue exited %d: %q", code, out)
	}
	// Re-submitting the matrix is an idempotent resume.
	out, _, code = capture(t, "-enqueue", hs.URL)
	if code != 0 || !strings.Contains(out, "enqueued 0 jobs (51 already known)") {
		t.Fatalf("re-enqueue exited %d: %q", code, out)
	}

	// Worker A completes one job, then dies while holding its second
	// lease — deterministically, via the fault-injection flag.
	_, errA, code := capture(t, "-worker", hs.URL, "-q", "-worker-id", "wA",
		"-die-after-leases", "2", "-farm-poll", "10ms")
	if code != 0 || !strings.Contains(errA, "dying after lease 2") {
		t.Fatalf("faulty worker exited %d: %q", code, errA)
	}
	counts := srv.Queue().Counts()
	if counts.Done != 1 || counts.Leased+counts.Pending != 50 {
		t.Fatalf("after worker death: %+v, want 1 done and 50 outstanding", counts)
	}

	// Healthy workers drain the rest concurrently — including, after one
	// TTL, the job the dead worker took with it.
	var wg sync.WaitGroup
	codes := make([]int, 3)
	errs := make([]string, 3)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, stderr, c := capture(t, "-worker", hs.URL, "-q",
				"-worker-id", fmt.Sprintf("w%d", i), "-farm-poll", "25ms")
			codes[i], errs[i] = c, stderr
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != 0 {
			t.Fatalf("worker w%d exited %d: %q", i, c, errs[i])
		}
	}

	counts = srv.Queue().Counts()
	if !counts.Drained || counts.Done != 51 || counts.Failed != 0 {
		t.Fatalf("after drain: %+v, want 51 done", counts)
	}
	if counts.Expired < 1 {
		t.Errorf("the dead worker's lease never expired: %+v", counts)
	}
	var credited int64
	for _, n := range counts.Workers {
		credited += n
	}
	if credited != 51 {
		t.Errorf("per-worker completions sum to %d, want 51: %v", credited, counts.Workers)
	}

	// Collect renders from the farm store: zero builds, output
	// byte-identical to the single-process reference.
	farmOut, farmErr, code := capture(t, "-collect", hs.URL, "-collect-timeout", "30s")
	if code != 0 {
		t.Fatalf("collect exited %d: %q", code, farmErr)
	}
	if farmOut != reference {
		t.Errorf("farm output differs from single-process output (%d vs %d bytes)",
			len(farmOut), len(reference))
	}
	if !strings.Contains(farmErr, "brbench: 0 builds") {
		t.Errorf("collect rebuilt jobs the farm already built:\n%s", farmErr)
	}
	if !strings.Contains(farmErr, "51 seeded") {
		t.Errorf("collect summary missing the seed count:\n%s", farmErr)
	}
	if srv.Stats().Leases < 52 {
		t.Errorf("server counted %d leases; the re-offered job should make it at least 52", srv.Stats().Leases)
	}
}

// The farm roles are mutually exclusive and render nothing they cannot
// produce; every bad combination must fail with a pointed message.
func TestFarmFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-worker", "http://x", "-enqueue", "http://y"}, "pick one"},
		{[]string{"-collect", "http://x", "-worker", "http://y"}, "pick one"},
		{[]string{"-die-after-leases", "2"}, "-worker"},
		{[]string{"-worker", "http://x", "-die-after-leases", "-1"}, "-die-after-leases"},
		{[]string{"-worker", "http://x", "-table", "4"}, "render nothing"},
		{[]string{"-enqueue", "http://x", "-export", "f.json"}, "render nothing"},
		{[]string{"-collect", "http://x", "-merge", "a.json"}, "-collect"},
		{[]string{"-collect", "http://x", "-shard", "0/2", "-export", "f.json"}, "-collect"},
	}
	for _, tc := range cases {
		_, stderr, code := capture(t, tc.args...)
		if code == 0 {
			t.Errorf("%v accepted", tc.args)
			continue
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%v: error %q does not mention %q", tc.args, stderr, tc.want)
		}
	}
}

// An enqueue against a dead coordinator must fail, not hang or succeed
// silently.
func TestEnqueueDeadCoordinator(t *testing.T) {
	_, stderr, code := capture(t, "-enqueue", "http://127.0.0.1:1", "-store-timeout", "100ms")
	if code == 0 {
		t.Fatal("enqueue against nothing succeeded")
	}
	if !strings.Contains(stderr, "enqueue") {
		t.Errorf("error does not mention enqueue: %q", stderr)
	}
}
