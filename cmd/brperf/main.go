// Command brperf measures the execution core's headline benchmarks —
// interpreter throughput on both engines, decode cost, the full
// measurement path and the predictor battery — and writes them as a
// JSON document. Committing the output as BENCH_baseline.json (and
// diffing later runs against it) gives the repo a performance
// trajectory that survives across machines and PRs:
//
//	go run ./cmd/brperf -o BENCH_baseline.json
//	go run ./cmd/brperf | diff BENCH_baseline.json -   # eyeball a change
//
// The same numbers are available as ordinary go benchmarks
// (go test -bench 'Interp|Decode|SimWithPredictors|PredictorBattery');
// brperf exists so CI and scripts get machine-readable output without
// parsing benchmark text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/predictor"
	"branchreorder/internal/sim"
	"branchreorder/internal/workload"
)

// result is one benchmark's measurement in the JSON document.
type result struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	N           int     `json:"n"` // iterations the timing is averaged over
}

type document struct {
	GoVersion  string            `json:"goVersion"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Benchmarks map[string]result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "brperf:", err)
		os.Exit(1)
	}
}

// frontend compiles one workload the way the benchmarks measure it.
func frontend(name string) (*lower.Result, workload.Workload, error) {
	w, ok := workload.Named(name)
	if !ok {
		return nil, w, fmt.Errorf("workload %q missing", name)
	}
	front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true})
	return front, w, err
}

func run(out string) error {
	doc := document{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]result{},
	}
	record := func(name string, r testing.BenchmarkResult) {
		doc.Benchmarks[name] = result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		fmt.Fprintf(os.Stderr, "brperf: %-28s %12.0f ns/op  %6d allocs/op  (n=%d)\n",
			name, doc.Benchmarks[name].NsPerOp, r.AllocsPerOp(), r.N)
	}

	// Interpreter throughput, both engines, on the suite's heaviest
	// workload by dynamic instruction count (sort, Table 4) and the
	// classic light one (wc) — the PR-over-PR speedup headline.
	for _, name := range []string{"sort", "wc"} {
		front, w, err := frontend(name)
		if err != nil {
			return err
		}
		input := w.Test()
		code, err := interp.Decode(front.Prog)
		if err != nil {
			return err
		}
		record("Interp/"+name+"/fast", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			m := &interp.FastMachine{Code: code, Input: input}
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}))
		record("Interp/"+name+"/reference", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := &interp.Machine{Prog: front.Prog, Input: input}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	front, w, err := frontend("wc")
	if err != nil {
		return err
	}
	input := w.Test()
	record("Decode/wc", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := interp.Decode(front.Prog); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record("SimWithPredictors/wc", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(front.Prog, input, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Table-6 battery on a synthetic stream: the vectorized bank versus
	// the 14-Bimodal fan-out it replaced. Same stream as the go test
	// benchmark (BenchmarkPredictorBattery).
	const streamLen = 4096
	ids := make([]int, streamLen)
	taken := make([]bool, streamLen)
	r := uint64(12345)
	for i := range ids {
		r = r*6364136223846793005 + 1442695040888963407
		ids[i] = int(r>>33) % 200
		taken[i] = r>>62&1 == 0
	}
	record("PredictorBattery/bank", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		bank := predictor.NewTable6Bank()
		for i := 0; i < b.N; i++ {
			bank.Observe(ids[i%streamLen], taken[i%streamLen])
		}
	}))
	record("PredictorBattery/bimodals", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		preds := sim.PredictorSweep()
		for i := 0; i < b.N; i++ {
			for _, p := range preds {
				p.Observe(ids[i%streamLen], taken[i%streamLen])
			}
		}
	}))

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}
