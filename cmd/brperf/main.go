// Command brperf measures the execution core's headline benchmarks —
// interpreter throughput on both engines, decode cost, the full
// measurement path and the predictor battery — and writes them as a
// JSON document. Committing the output as BENCH_baseline.json (and
// diffing later runs against it) gives the repo a performance
// trajectory that survives across machines and PRs:
//
//	go run ./cmd/brperf -o BENCH_baseline.json
//	go run ./cmd/brperf | diff BENCH_baseline.json -   # eyeball a change
//
// The same numbers are available as ordinary go benchmarks
// (go test -bench 'Interp|Decode|Build|SimWithPredictors|PredictorBattery');
// brperf exists so CI and scripts get machine-readable output without
// parsing benchmark text.
//
// -compare diffs two such documents and fails on regressions, which is
// how CI holds each PR against the committed baseline:
//
//	go run ./cmd/brperf -compare -threshold 50 BENCH_baseline.json new.json
//
// -server switches brperf from micro-benchmarks to macro load: it
// drives a running brstored with a deterministic mixed workload
// (internal/bench/loadgen) and reports per-op-class throughput and
// latency percentiles. -json emits the load document committed as
// LOAD_baseline.json; -compare understands both document kinds:
//
//	go run ./cmd/brperf -server http://127.0.0.1:8745 -duration 10s -json -o LOAD_baseline.json
//	go run ./cmd/brperf -compare -threshold 200 LOAD_baseline.json load_new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"branchreorder/internal/bench/loadgen"
	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/predictor"
	"branchreorder/internal/sim"
	"branchreorder/internal/workload"
)

// result is one benchmark's measurement in the JSON document.
type result struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	N           int     `json:"n"` // iterations the timing is averaged over
}

type document struct {
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Host records where the benchmarks ran (CPU count, GOMAXPROCS,
	// CPU model). -compare prints it but never gates on it, so drift
	// between baselines taken on different machines is diagnosable.
	Host       *loadgen.HostInfo `json:"host,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	doCompare := flag.Bool("compare", false, "compare two result files: brperf -compare [-threshold pct] OLD.json NEW.json")
	threshold := flag.Float64("threshold", 25, "with -compare, fail if any benchmark slows down by more than this percentage")
	server := flag.String("server", "", "load-test a running brstored at this base URL instead of benchmarking")
	duration := flag.Duration("duration", 10*time.Second, "with -server, how long to generate load")
	clients := flag.Int("clients", 8, "with -server, concurrent closed-loop clients")
	mix := flag.String("mix", "get=70,put=20,batch=5,queue=5", "with -server, op-class weights")
	seed := flag.Uint64("seed", 1, "with -server, workload stream seed (same seed, same op streams)")
	abandon := flag.Float64("abandon", 0.1, "with -server, fraction of queue lifecycles abandoned after leasing")
	jsonOut := flag.Bool("json", false, "with -server, emit the machine-readable load document instead of a summary")
	flag.Parse()
	var err error
	switch {
	case *doCompare:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: brperf -compare [-threshold pct] OLD.json NEW.json")
			os.Exit(2)
		}
		err = compareDispatch(flag.Arg(0), flag.Arg(1), *threshold)
	case *server != "":
		err = runLoad(loadFlags{
			server:   *server,
			duration: *duration,
			clients:  *clients,
			mix:      *mix,
			seed:     *seed,
			abandon:  *abandon,
			jsonOut:  *jsonOut,
			out:      *out,
		})
	default:
		err = run(*out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "brperf:", err)
		os.Exit(1)
	}
}

// loadDocument reads one brperf JSON document.
func loadDocument(path string) (*document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

// compare prints per-benchmark deltas between two result documents and
// returns an error — a nonzero exit — if any shared benchmark's ns/op
// grew by more than threshold percent. Benchmarks present in only one
// document are reported but never count as regressions, so adding or
// retiring a benchmark does not break CI.
func compare(oldPath, newPath string, threshold float64) error {
	oldDoc, err := loadDocument(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadDocument(newPath)
	if err != nil {
		return err
	}
	// Host context for cross-machine diffs; informational only.
	if oldDoc.Host != nil || newDoc.Host != nil {
		fmt.Printf("old host: %s\nnew host: %s\n", oldDoc.Host, newDoc.Host)
	}
	names := make([]string, 0, len(oldDoc.Benchmarks)+len(newDoc.Benchmarks))
	for name := range oldDoc.Benchmarks {
		names = append(names, name)
	}
	for name := range newDoc.Benchmarks {
		if _, ok := oldDoc.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-28s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	var regressed []string
	for _, name := range names {
		o, okOld := oldDoc.Benchmarks[name]
		n, okNew := newDoc.Benchmarks[name]
		switch {
		case !okOld:
			fmt.Printf("%-28s %14s %14.0f %9s\n", name, "-", n.NsPerOp, "(new)")
		case !okNew:
			fmt.Printf("%-28s %14.0f %14s %9s\n", name, o.NsPerOp, "-", "(gone)")
		default:
			delta := 0.0
			if o.NsPerOp > 0 {
				delta = 100 * (n.NsPerOp/o.NsPerOp - 1)
			}
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
				regressed = append(regressed, name)
			}
			fmt.Printf("%-28s %14.0f %14.0f %+8.1f%%%s\n", name, o.NsPerOp, n.NsPerOp, delta, mark)
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %s",
			len(regressed), threshold, strings.Join(regressed, ", "))
	}
	return nil
}

// frontend compiles one workload the way the benchmarks measure it.
func frontend(name string) (*lower.Result, workload.Workload, error) {
	w, ok := workload.Named(name)
	if !ok {
		return nil, w, fmt.Errorf("workload %q missing", name)
	}
	front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true})
	return front, w, err
}

func run(out string) error {
	doc := document{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Host:       loadgen.CollectHost(),
		Benchmarks: map[string]result{},
	}
	record := func(name string, r testing.BenchmarkResult) {
		doc.Benchmarks[name] = result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
		fmt.Fprintf(os.Stderr, "brperf: %-28s %12.0f ns/op  %6d allocs/op  (n=%d)\n",
			name, doc.Benchmarks[name].NsPerOp, r.AllocsPerOp(), r.N)
	}

	// Interpreter throughput, both engines, on the suite's heaviest
	// workload by dynamic instruction count (sort, Table 4) and the
	// classic light one (wc) — the PR-over-PR speedup headline.
	for _, name := range []string{"sort", "wc"} {
		front, w, err := frontend(name)
		if err != nil {
			return err
		}
		input := w.Test()
		code, err := interp.Decode(front.Prog)
		if err != nil {
			return err
		}
		unfused, err := interp.DecodeWith(front.Prog, interp.DecodeOptions{})
		if err != nil {
			return err
		}
		record("Interp/"+name+"/fast", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			m := &interp.FastMachine{Code: code, Input: input}
			if _, err := m.Run(); err != nil { // warm-up sizes the arenas
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}))
		// Same engine without superinstruction fusion (cmp+br folding
		// only): the within-document pair fast vs fast-nofuse carries the
		// fusion speedup claim and is machine-independent.
		record("Interp/"+name+"/fast-nofuse", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			m := &interp.FastMachine{Code: unfused, Input: input}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}))
		// The closure-compiled engine on the same decoded code. The
		// warm-up run also compiles the closure graph, so the loop times
		// steady-state execution — the fast vs closure pair within one
		// document is the dispatch-elimination speedup claim.
		record("Interp/"+name+"/closure", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			m := &interp.ClosureMachine{Code: code, Input: input}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}))
		record("Interp/"+name+"/reference", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := &interp.Machine{Prog: front.Prog, Input: input}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	front, w, err := frontend("wc")
	if err != nil {
		return err
	}
	input := w.Test()

	// The staged-pipeline headline: a cold build pays frontend +
	// detection + training + finalize; a build through a warm StageCache
	// pays only finalize. The ratio is what the ablation grid and
	// AutoBuild save on every Transform variant after the first.
	opts := pipeline.Options{Switch: lower.SetI, Optimize: true}
	train := w.Train()
	record("Build/wc/cold", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.Build(w.Source, train, opts); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record("Build/wc/staged-warm", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cache := pipeline.NewStageCache(0)
		if _, err := cache.Build(w.Source, train, opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Build(w.Source, train, opts); err != nil {
				b.Fatal(err)
			}
		}
	}))

	record("Decode/wc", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := interp.Decode(front.Prog); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record("SimWithPredictors/wc", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(front.Prog, input, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))
	// The same end-to-end measurement with superinstructions off: the
	// pair records the fusion win on the full sim.Run path (decode +
	// execute + predictor bank), not just the bare dispatch loop.
	record("SimWithPredictors/wc-nofuse", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunWith(front.Prog, input, nil, sim.Options{NoFuse: true}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	// End-to-end measurement on the closure engine, decode + compile
	// included each iteration — the one-shot sim.Run cost a caller of
	// -engine closure actually pays.
	record("SimWithPredictors/wc-closure", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunWith(front.Prog, input, nil, sim.Options{Engine: sim.EngineClosure}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	// The same end-to-end pair on the suite's heaviest workload, where
	// execution (not the predictor bank) dominates the measurement: this
	// is where the closure engine's end-to-end win shows.
	sortFront, sortW, err := frontend("sort")
	if err != nil {
		return err
	}
	sortInput := sortW.Test()
	record("SimWithPredictors/sort", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(sortFront.Prog, sortInput, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record("SimWithPredictors/sort-closure", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunWith(sortFront.Prog, sortInput, nil, sim.Options{Engine: sim.EngineClosure}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Table-6 battery on a synthetic stream: the vectorized bank versus
	// the 14-Bimodal fan-out it replaced. Same stream as the go test
	// benchmark (BenchmarkPredictorBattery).
	const streamLen = 4096
	ids := make([]int, streamLen)
	taken := make([]bool, streamLen)
	r := uint64(12345)
	for i := range ids {
		r = r*6364136223846793005 + 1442695040888963407
		ids[i] = int(r>>33) % 200
		taken[i] = r>>62&1 == 0
	}
	record("PredictorBattery/bank", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		bank := predictor.NewTable6Bank()
		for i := 0; i < b.N; i++ {
			bank.Observe(ids[i%streamLen], taken[i%streamLen])
		}
	}))
	record("PredictorBattery/bimodals", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		preds := sim.PredictorSweep()
		for i := 0; i < b.N; i++ {
			for _, p := range preds {
				p.Observe(ids[i%streamLen], taken[i%streamLen])
			}
		}
	}))

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}
