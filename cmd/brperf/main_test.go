package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, name string, benches map[string]result) string {
	t.Helper()
	doc := document{GoVersion: "go0.0", GOOS: "linux", GOARCH: "amd64", Benchmarks: benches}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinThreshold(t *testing.T) {
	old := writeDoc(t, "old.json", map[string]result{
		"Interp/wc/fast": {NsPerOp: 1000},
		"Build/wc/cold":  {NsPerOp: 2000},
	})
	// +10% and -50%: both inside a 25% threshold.
	new := writeDoc(t, "new.json", map[string]result{
		"Interp/wc/fast": {NsPerOp: 1100},
		"Build/wc/cold":  {NsPerOp: 1000},
	})
	if err := compare(old, new, 25); err != nil {
		t.Errorf("within-threshold compare failed: %v", err)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := writeDoc(t, "old.json", map[string]result{
		"Interp/wc/fast": {NsPerOp: 1000},
		"Build/wc/cold":  {NsPerOp: 2000},
	})
	new := writeDoc(t, "new.json", map[string]result{
		"Interp/wc/fast": {NsPerOp: 2000}, // +100%
		"Build/wc/cold":  {NsPerOp: 2100}, // +5%
	})
	err := compare(old, new, 25)
	if err == nil {
		t.Fatal("regression not flagged")
	}
	if !strings.Contains(err.Error(), "Interp/wc/fast") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if strings.Contains(err.Error(), "Build/wc/cold") {
		t.Errorf("error names a non-regressed benchmark: %v", err)
	}
}

// Added and retired benchmarks are reported, never regressions — the
// baseline refresh and a CI compare must not fight.
func TestCompareToleratesRosterChanges(t *testing.T) {
	old := writeDoc(t, "old.json", map[string]result{
		"Retired/bench": {NsPerOp: 1000},
		"Interp/wc":     {NsPerOp: 1000},
	})
	new := writeDoc(t, "new.json", map[string]result{
		"Interp/wc": {NsPerOp: 1000},
		"Build/new": {NsPerOp: 123456},
	})
	if err := compare(old, new, 25); err != nil {
		t.Errorf("roster change treated as regression: %v", err)
	}
}

func TestCompareRejectsEmptyDocuments(t *testing.T) {
	empty := writeDoc(t, "empty.json", map[string]result{})
	good := writeDoc(t, "good.json", map[string]result{"Interp/wc": {NsPerOp: 1}})
	if err := compare(empty, good, 25); err == nil {
		t.Error("empty old document accepted")
	}
	if err := compare(good, filepath.Join(t.TempDir(), "missing.json"), 25); err == nil {
		t.Error("missing new document accepted")
	}
}
