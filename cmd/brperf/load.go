package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"branchreorder/internal/bench/loadgen"
)

// loadFlags carries the -server mode's flag values into runLoad.
type loadFlags struct {
	server   string
	duration time.Duration
	clients  int
	mix      string
	seed     uint64
	abandon  float64
	jsonOut  bool
	out      string
}

// runLoad is the brperf -server mode: drive the given brstored with the
// configured mixed workload and report per-op-class latency. With
// -json the report is the machine-readable load document
// (LOAD_baseline.json); otherwise a human summary.
func runLoad(f loadFlags) error {
	mix, err := loadgen.ParseMix(f.mix)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	report, err := loadgen.Run(ctx, loadgen.Config{
		URL:      f.server,
		Clients:  f.clients,
		Duration: f.duration,
		Mix:      mix,
		Seed:     f.seed,
		Abandon:  f.abandon,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "brperf: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if report.Requests == 0 {
		return fmt.Errorf("load run recorded no operations (server down, or duration shorter than one round trip?)")
	}
	if !f.jsonOut {
		printLoadSummary(report)
		return nil
	}
	if f.out == "" {
		return report.WriteJSON(os.Stdout)
	}
	file, err := os.Create(f.out)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// printLoadSummary renders the report for a terminal.
func printLoadSummary(r *loadgen.Report) {
	fmt.Printf("load: %d clients, mix %s, seed %d, %.1fs\n", r.Clients, r.Mix, r.Seed, r.DurationSec)
	fmt.Printf("%-8s %10s %10s %9s %9s %9s %9s %8s\n",
		"class", "requests", "req/s", "p50", "p90", "p99", "p99.9", "errors")
	classes := make([]string, 0, len(r.Ops))
	for class := range r.Ops {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		s := r.Ops[class]
		fmt.Printf("%-8s %10d %10.0f %8.2fms %8.2fms %8.2fms %8.2fms %8d\n",
			class, s.Requests, s.ReqPerSec,
			s.LatencyMs.P50, s.LatencyMs.P90, s.LatencyMs.P99, s.LatencyMs.P999, s.Errors)
	}
	fmt.Printf("%-8s %10d %10.0f %39s %8d\n", "total", r.Requests, r.ReqPerSec, "", r.Errors)
	if r.Server != nil {
		fmt.Printf("server:  +%d hits +%d misses +%d puts +%d rejects",
			r.Server.Hits, r.Server.Misses, r.Server.Puts, r.Server.PutRejects)
		if r.Server.Enqueues > 0 || r.Server.QueueDone > 0 {
			fmt.Printf(" | queue +%d enqueued +%d done +%d expired",
				r.Server.Enqueues, r.Server.QueueDone, r.Server.QueueExpired)
		}
		fmt.Println()
	}
}

// documentKind sniffs a result file's kind: "load" for load reports,
// "" for classic benchmark documents (which predate the kind field).
func documentKind(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	return probe.Kind, nil
}

// loadReport reads and validates one load document.
func loadReport(path string) (*loadgen.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r loadgen.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Kind != loadgen.ReportKind {
		return nil, fmt.Errorf("%s: not a load report (kind %q)", path, r.Kind)
	}
	if len(r.Ops) == 0 {
		return nil, fmt.Errorf("%s: no op classes", path)
	}
	return &r, nil
}

// compareDispatch routes -compare by document kind: two load reports go
// through the load comparison, two benchmark documents through the
// classic one, and a mix is a usage error rather than a silent zero.
func compareDispatch(oldPath, newPath string, threshold float64) error {
	oldKind, err := documentKind(oldPath)
	if err != nil {
		return err
	}
	newKind, err := documentKind(newPath)
	if err != nil {
		return err
	}
	if oldKind != newKind {
		return fmt.Errorf("cannot compare %s (kind %q) with %s (kind %q)",
			oldPath, oldKind, newPath, newKind)
	}
	if oldKind == loadgen.ReportKind {
		oldR, err := loadReport(oldPath)
		if err != nil {
			return err
		}
		newR, err := loadReport(newPath)
		if err != nil {
			return err
		}
		return loadgen.CompareReports(os.Stdout, oldR, newR, threshold)
	}
	return compare(oldPath, newPath, threshold)
}
