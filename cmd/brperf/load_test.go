package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"branchreorder/internal/bench/loadgen"
	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
	"branchreorder/internal/bench/storenet/queue"
)

// bootServer runs a brstored-equivalent (store + queue) on loopback.
func bootServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := storenet.NewServer(st)
	srv.AttachQueue(queue.New(time.Second, 0))
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// runLoadTo runs the -server mode against hs writing the JSON document
// to a file, and returns the decoded report.
func runLoadTo(t *testing.T, hs *httptest.Server, path string) *loadgen.Report {
	t.Helper()
	err := runLoad(loadFlags{
		server:   hs.URL,
		duration: time.Second,
		clients:  4,
		mix:      "get=70,put=20,batch=5,queue=5",
		seed:     1,
		abandon:  0.1,
		jsonOut:  true,
		out:      path,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// The acceptance path end to end: brperf -server produces a load
// document with throughput and percentiles for every requested op
// class, and -compare against itself passes.
func TestRunLoadProducesDocument(t *testing.T) {
	hs := bootServer(t)
	path := filepath.Join(t.TempDir(), "LOAD_baseline.json")
	report := runLoadTo(t, hs, path)

	if report.Errors != 0 {
		t.Errorf("%d unexpected errors", report.Errors)
	}
	for _, class := range []string{"get", "put", "batch", "queue"} {
		s := report.Ops[class]
		if s == nil || s.Requests == 0 || s.ReqPerSec <= 0 {
			t.Errorf("class %q missing from document: %+v", class, s)
			continue
		}
		if s.LatencyMs.P50 <= 0 || s.LatencyMs.P99 <= 0 || s.LatencyMs.P999 <= 0 {
			t.Errorf("class %q percentiles missing: %+v", class, s.LatencyMs)
		}
	}
	if err := compareDispatch(path, path, 10); err != nil {
		t.Errorf("self-comparison failed: %v", err)
	}
	if err := runLoad(loadFlags{server: hs.URL, mix: "get=1,fetch=2"}); err == nil {
		t.Error("bad mix accepted")
	}
}

// rewriteReport loads, mutates, and rewrites a load document.
func rewriteReport(t *testing.T, src, dst string, mutate func(*loadgen.Report)) {
	t.Helper()
	r, err := loadReport(src)
	if err != nil {
		t.Fatal(err)
	}
	mutate(r)
	f, err := os.Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// The regression gate: an injected tail-latency collapse in the new
// document must make -compare exit nonzero.
func TestCompareDispatchCatchesInjectedRegression(t *testing.T) {
	hs := bootServer(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	runLoadTo(t, hs, base)

	bad := filepath.Join(dir, "bad.json")
	rewriteReport(t, base, bad, func(r *loadgen.Report) {
		r.Ops["get"].LatencyMs.P99 *= 50
		r.Ops["get"].LatencyMs.P999 *= 50
	})
	err := compareDispatch(base, bad, 200)
	if err == nil {
		t.Fatal("50× injected p99 regression passed a 200% threshold")
	}
	if !strings.Contains(err.Error(), "get") {
		t.Errorf("regression error does not name the class: %v", err)
	}
}

// -compare refuses to diff a load document against a benchmark
// document instead of silently comparing nothing.
func TestCompareDispatchRejectsMixedKinds(t *testing.T) {
	dir := t.TempDir()
	loadPath := filepath.Join(dir, "load.json")
	benchPath := filepath.Join(dir, "bench.json")

	load := &loadgen.Report{
		Kind: loadgen.ReportKind, Schema: loadgen.ReportSchema,
		Ops: map[string]*loadgen.OpStats{"get": {Requests: 1}},
	}
	f, err := os.Create(loadPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := load.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	bench, _ := json.Marshal(document{Benchmarks: map[string]result{"Decode/wc": {NsPerOp: 1}}})
	if err := os.WriteFile(benchPath, bench, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := compareDispatch(loadPath, benchPath, 25); err == nil {
		t.Error("mixed-kind comparison succeeded")
	}
	// And the classic path still works through the dispatcher.
	if err := compareDispatch(benchPath, benchPath, 25); err != nil {
		t.Errorf("benchmark self-comparison failed: %v", err)
	}
}
