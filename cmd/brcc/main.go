// Command brcc is the Mini-C compiler driver: it compiles a source file
// (or a named built-in workload), optionally applies profile-guided
// branch reordering, and can dump the IR, list the detected sequences, or
// run the result on an input file.
//
// Usage:
//
//	brcc [flags] file.mc
//	brcc [flags] -workload sort
//
// Typical sessions:
//
//	brcc -dump prog.mc                     # show optimized IR
//	brcc -seqs prog.mc                     # show reorderable sequences
//	brcc -train train.txt -run in.txt prog.mc
//	                                       # reorder using train.txt, then
//	                                       # execute on in.txt with stats
//	brcc -workload wc -train-builtin -run-builtin -compare
//	                                       # measure baseline vs reordered
package main

import (
	"flag"
	"fmt"
	"os"

	"branchreorder/internal/core"
	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/workload"
)

func main() {
	var (
		setName      = flag.String("set", "I", "switch heuristic set: I, II, or III (paper Table 2)")
		optimize     = flag.Bool("O", true, "apply conventional optimizations")
		dump         = flag.Bool("dump", false, "print the program's IR")
		seqs         = flag.Bool("seqs", false, "list detected reorderable sequences")
		trainFile    = flag.String("train", "", "training input file; enables branch reordering")
		profileOut   = flag.String("profile-out", "", "first pass: train and write the profile data file (Figure 2)")
		profileIn    = flag.String("profile-in", "", "second pass: reorder using a stored profile data file")
		commonSucc   = flag.Bool("common-succ", false, "also reorder common-successor branch sequences (Section 10 extension)")
		runFile      = flag.String("run", "", "execute the program on this input file")
		wl           = flag.String("workload", "", "compile a built-in workload instead of a file")
		trainBuiltin = flag.Bool("train-builtin", false, "use the workload's built-in training input")
		runBuiltin   = flag.Bool("run-builtin", false, "execute on the workload's built-in test input")
		compare      = flag.Bool("compare", false, "run both baseline and reordered and report both")
		engName      = flag.String("engine", "fast", "execution backend for training and -run: fast, closure, or reference — results are byte-identical, only speed changes")
	)
	flag.Parse()

	set, err := parseSet(*setName)
	check(err)

	eng, err := interp.ParseEngine(*engName)
	check(err)
	execEngine = eng

	src, train, test, err := loadInputs(*wl, *trainFile, *runFile, *trainBuiltin, *runBuiltin)
	check(err)

	opts := pipeline.Options{Switch: set, Optimize: *optimize, CommonSuccessor: *commonSucc}

	// Explicit two-pass workflow with the profile stored in a file.
	if *profileOut != "" {
		check(runFirstPass(src, opts, train, *profileOut))
		return
	}
	if *profileIn != "" {
		build, err := runSecondPass(src, opts, *profileIn)
		check(err)
		report(build, *seqs, *dump, test, *compare)
		return
	}

	if train == nil {
		// Single-pass compile only.
		front, err := pipeline.Frontend(src, opts)
		check(err)
		if *seqs {
			listSequences(front.Prog)
		}
		if *dump {
			fmt.Print(front.Prog.Dump())
		}
		if test != nil {
			execute("program", front.Prog, test)
		}
		return
	}

	build, err := pipeline.BuildWith(src, train, opts, eng)
	check(err)
	report(build, *seqs, *dump, test, *compare)
}

// execEngine is the -engine selection, consulted by every program
// execution and training run. Results are engine-independent.
var execEngine interp.Engine

// report prints the requested views of a finished build and runs it.
func report(build *pipeline.BuildResult, seqs, dump bool, test []byte, compare bool) {
	if seqs {
		for i, s := range build.Sequences {
			fmt.Printf("%v  [%v]\n", s, build.Results[i].Reason)
		}
		for i, s := range build.OrSequences {
			fmt.Printf("%v  [%v]\n", s, build.OrResults[i].Reason)
		}
		fmt.Printf("%d sequences detected, %d reordered\n",
			build.TotalSeqs()+len(build.OrSequences),
			build.ReorderedSeqs()+appliedOr(build))
	}
	if dump {
		fmt.Print(build.Reordered.Dump())
	}
	if test != nil {
		if compare {
			execute("baseline ", build.Baseline, test)
		}
		execute("reordered", build.Reordered, test)
	}
}

func appliedOr(build *pipeline.BuildResult) int {
	n := 0
	for _, r := range build.OrResults {
		if r.Applied {
			n++
		}
	}
	return n
}

// runFirstPass instruments, trains, and writes the profile data file.
func runFirstPass(src string, opts pipeline.Options, train []byte, path string) error {
	if train == nil {
		return fmt.Errorf("-profile-out requires -train (or -train-builtin)")
	}
	ins, err := pipeline.Instrument(src, opts)
	if err != nil {
		return err
	}
	ins.Exec = execEngine
	prof, orProf, err := ins.Train(train)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pipeline.WriteProfile(f, prof, orProf); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote profile for %d sequence(s) to %s\n",
		len(ins.Sequences)+len(ins.OrSequences), path)
	return f.Close()
}

// runSecondPass recompiles using a stored profile data file.
func runSecondPass(src string, opts pipeline.Options, path string) (*pipeline.BuildResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seqProfiles, orProfiles, err := core.ReadProfiles(f)
	if err != nil {
		return nil, err
	}
	return pipeline.Finalize(src, opts, seqProfiles, orProfiles)
}

func parseSet(s string) (lower.HeuristicSet, error) {
	switch s {
	case "I", "1":
		return lower.SetI, nil
	case "II", "2":
		return lower.SetII, nil
	case "III", "3":
		return lower.SetIII, nil
	default:
		return 0, fmt.Errorf("unknown heuristic set %q (want I, II, or III)", s)
	}
}

func loadInputs(wl, trainFile, runFile string, trainBuiltin, runBuiltin bool) (src string, train, test []byte, err error) {
	if wl != "" {
		w, ok := workload.Named(wl)
		if !ok {
			return "", nil, nil, fmt.Errorf("unknown workload %q", wl)
		}
		src = w.Source
		if trainBuiltin {
			train = w.Train()
		}
		if runBuiltin {
			test = w.Test()
		}
	} else {
		args := flag.Args()
		if len(args) != 1 {
			return "", nil, nil, fmt.Errorf("expected exactly one source file (or -workload)")
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return "", nil, nil, err
		}
		src = string(data)
	}
	if trainFile != "" {
		train, err = os.ReadFile(trainFile)
		if err != nil {
			return "", nil, nil, err
		}
	}
	if runFile != "" {
		test, err = os.ReadFile(runFile)
		if err != nil {
			return "", nil, nil, err
		}
	}
	return src, train, test, nil
}

func listSequences(prog *ir.Program) {
	clone := ir.CloneProgram(prog)
	found := core.Detect(clone, 0)
	for _, s := range found {
		fmt.Println(s)
	}
	fmt.Printf("%d sequences detected\n", len(found))
}

func execute(label string, prog *ir.Program, input []byte) {
	ret, st, out, err := interp.Exec(execEngine, prog, nil, input, nil, nil)
	check(err)
	os.Stdout.Write(out)
	fmt.Fprintf(os.Stderr,
		"%s: exit %d, %d insts, %d cond branches (%d taken), %d jumps, %d indirect\n",
		label, ret, st.Insts, st.CondBranches, st.TakenBranches,
		st.Jumps, st.IndirectJumps)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "brcc:", err)
		os.Exit(1)
	}
}
