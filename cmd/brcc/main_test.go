package main

import (
	"os"
	"path/filepath"
	"testing"

	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

func TestParseSet(t *testing.T) {
	good := map[string]lower.HeuristicSet{
		"I": lower.SetI, "1": lower.SetI,
		"II": lower.SetII, "2": lower.SetII,
		"III": lower.SetIII, "3": lower.SetIII,
	}
	for in, want := range good {
		got, err := parseSet(in)
		if err != nil || got != want {
			t.Errorf("parseSet(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseSet("IV"); err == nil {
		t.Error("parseSet(IV) succeeded")
	}
}

func TestTwoPassHelpers(t *testing.T) {
	dir := t.TempDir()
	src := `
int n = 0;
int main() {
	int c;
	while ((c = getchar()) != EOF) {
		if (c == 'a') n = n + 1;
		else if (c == 'b') n = n + 2;
		else n = n + 5;
	}
	putint(n);
	return 0;
}`
	train := make([]byte, 400)
	for i := range train {
		train[i] = 'z'
	}
	profPath := filepath.Join(dir, "prof.txt")
	opts := pipeline.Options{Switch: lower.SetI, Optimize: true}
	if err := runFirstPass(src, opts, train, profPath); err != nil {
		t.Fatalf("first pass: %v", err)
	}
	if fi, err := os.Stat(profPath); err != nil || fi.Size() == 0 {
		t.Fatalf("profile file missing or empty: %v", err)
	}
	build, err := runSecondPass(src, opts, profPath)
	if err != nil {
		t.Fatalf("second pass: %v", err)
	}
	if build.ReorderedSeqs() == 0 {
		t.Error("profile-driven second pass reordered nothing")
	}
	// Guard rails.
	if err := runFirstPass(src, opts, nil, profPath); err == nil {
		t.Error("first pass without training input succeeded")
	}
	if _, err := runSecondPass(src, opts, filepath.Join(dir, "nope.txt")); err == nil {
		t.Error("second pass with missing profile succeeded")
	}
}

func TestLoadInputsWorkload(t *testing.T) {
	src, train, test, err := loadInputs("wc", "", "", true, true)
	if err != nil || src == "" || len(train) == 0 || len(test) == 0 {
		t.Fatalf("loadInputs(wc): %v", err)
	}
	if _, _, _, err := loadInputs("nonesuch", "", "", false, false); err == nil {
		t.Error("unknown workload accepted")
	}
}
