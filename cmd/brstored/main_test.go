package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
	"branchreorder/internal/bench/storenet/queue"
	"branchreorder/internal/interp"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
)

func testRecord() *store.Record {
	return &store.Record{
		Workload: "wc",
		Set:      int(lower.SetI),
		Opts:     pipeline.Options{Switch: lower.SetI, Optimize: true},
		Base:     &store.Measurement{Stats: interp.Stats{Insts: 10}, Output: []byte("x")},
		Reord:    &store.Measurement{Stats: interp.Stats{Insts: 9}, Output: []byte("x")},
		Seqs:     []store.SeqStat{{Applied: true, OrigBranches: 2, NewBranches: 1}},
	}
}

func TestFlagValidation(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	if code := run(ctx, []string{}, &buf, nil); code == 0 {
		t.Error("missing -dir accepted")
	}
	if !strings.Contains(buf.String(), "-dir") {
		t.Errorf("error does not mention -dir: %q", buf.String())
	}
	if code := run(ctx, []string{"-dir", t.TempDir(), "-gc-interval", "0s"}, &buf, nil); code == 0 {
		t.Error("zero -gc-interval accepted")
	}
	if code := run(ctx, []string{"-nosuchflag"}, &buf, nil); code != 2 {
		t.Error("bad flag not rejected with usage exit code")
	}
}

// syncBuffer lets the test read logs while the daemon goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// The served daemon must accept a put, serve it back, expose metrics,
// and shut down cleanly on context cancellation.
func TestServeRoundTripAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	done := make(chan int, 1)
	dir := t.TempDir()
	var buf syncBuffer
	go func() {
		done <- run(ctx, []string{"-dir", dir, "-addr", "127.0.0.1:0"}, &buf,
			func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case code := <-done:
		t.Fatalf("brstored exited %d before listening: %s", code, buf.String())
	case <-time.After(5 * time.Second):
		t.Fatal("brstored never came up")
	}

	client, err := storenet.NewClient("http://"+addr, storenet.ClientConfig{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fp := store.Fingerprint("src", nil, nil, pipeline.Options{Switch: lower.SetI, Optimize: true})
	if err := client.Put(ctx, fp, testRecord()); err != nil {
		t.Fatal(err)
	}
	rec, out := client.Get(ctx, fp)
	if out != storenet.Hit || rec.Workload != "wc" {
		t.Fatalf("round trip: %v, %+v", out, rec)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"brstored_puts 1", "brstored_hits 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("shutdown exited %d: %s", code, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("brstored did not shut down")
	}
}

// With -queue the daemon is a coordinator: the work-queue API is live,
// /metrics grows the queue section, -log-requests traces the traffic,
// and -pprof serves the profiling index.
func TestServeQueueCoordinator(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	done := make(chan int, 1)
	var buf syncBuffer
	go func() {
		done <- run(ctx, []string{"-dir", t.TempDir(), "-addr", "127.0.0.1:0",
			"-queue", "-lease-ttl", "30s", "-log-requests", "-pprof"}, &buf,
			func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case code := <-done:
		t.Fatalf("brstored exited %d before listening: %s", code, buf.String())
	case <-time.After(5 * time.Second):
		t.Fatal("brstored never came up")
	}

	client, err := storenet.NewClient("http://"+addr, storenet.ClientConfig{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	specs := []queue.JobSpec{{Workload: "wc", Opts: pipeline.Options{Switch: lower.SetI, Optimize: true}}}
	if resp, err := client.EnqueueJobs(ctx, specs); err != nil || resp.Accepted != 1 {
		t.Fatalf("enqueue: %+v, %v", resp, err)
	}
	l, _, err := client.LeaseJob(ctx, "w1")
	if err != nil || l == nil {
		t.Fatalf("lease: %v, %v", l, err)
	}
	if l.TTL != 30*time.Second {
		t.Errorf("lease TTL %v, want the -lease-ttl value 30s", l.TTL)
	}
	if err := client.CompleteJob(ctx, l.ID, l.Token, "w1", ""); err != nil {
		t.Fatalf("complete: %v", err)
	}
	counts, err := client.QueueStatus(ctx)
	if err != nil || !counts.Drained || counts.Done != 1 {
		t.Fatalf("status: %+v, %v", counts, err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"brstored_queue_enqueued 1",
		"brstored_queue_depth 0",
		"brstored_queue_completed 1",
		`brstored_worker_completions{worker="w1"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d, want 200", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("shutdown exited %d: %s", code, buf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("brstored did not shut down")
	}

	log := buf.String()
	for _, want := range []string{
		"work-queue coordinator enabled, lease TTL 30s",
		"method=POST path=/v1/queue status=200",
		"method=POST path=/v1/complete status=204",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

// -lease-ttl without -queue would silently configure nothing; refuse it.
func TestLeaseTTLRequiresQueue(t *testing.T) {
	var buf bytes.Buffer
	if code := run(context.Background(), []string{"-dir", t.TempDir(), "-lease-ttl", "5s"}, &buf, nil); code == 0 {
		t.Error("-lease-ttl without -queue accepted")
	}
	if !strings.Contains(buf.String(), "-queue") {
		t.Errorf("error does not point at -queue: %q", buf.String())
	}
}
