// Command brstored serves a fleet-shared brbench result store over
// HTTP. It wraps the same content-addressed directory store that
// brbench -cache-dir uses (atomic writes, checksummed entries,
// corrupt-entry-as-miss all inherited), validates every upload before it
// touches disk, and optionally garbage-collects stale or excess entries
// on an interval.
//
//	brstored -dir /var/cache/brstored                  # serve on :8370
//	brstored -dir pool -addr 127.0.0.1:9000            # pick a port
//	brstored -dir pool -max-bytes 1073741824           # LRU-bound to 1 GiB
//	brstored -dir pool -max-age 720h -gc-interval 1h   # drop month-old entries
//	brstored -dir pool -max-bytes 1073741824 -profile-max-age 4320h
//	                       # results LRU-bound, profile records kept half a year
//	brstored -dir pool -queue -lease-ttl 30s           # build-farm coordinator
//
// Point workers at it with brbench -store-url http://HOST:8370; a
// warm pool means a fresh machine runs the whole suite with zero
// builds. GET /metrics serves plaintext counters (hits, misses, puts,
// bytes, evictions — and, with -queue, queue depth, leases, and
// per-worker completions).
//
// With -queue the server additionally coordinates a build farm: brbench
// -enqueue submits the job matrix, any number of brbench -worker
// processes pull jobs under -lease-ttl leases (a dead worker's lease is
// re-offered after one TTL), and brbench -collect assembles the merged
// output. -log-requests emits one structured line per request, and
// /debug/pprof serves the standard profiles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	nhpprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"branchreorder/internal/bench/store"
	"branchreorder/internal/bench/storenet"
	"branchreorder/internal/bench/storenet/queue"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stderr, nil))
}

// run is main with its dependencies injected. onReady, when non-nil,
// receives the bound address once the listener is up — how tests drive
// a server on port 0. Cancelling ctx (or SIGINT/SIGTERM) shuts the
// server down gracefully.
func run(ctx context.Context, args []string, stderr io.Writer, onReady func(addr string)) int {
	fs := flag.NewFlagSet("brstored", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8370", "listen address")
		dir        = fs.String("dir", "", "backing store directory (required)")
		maxBytes   = fs.Int64("max-bytes", 0, "evict least-recently-used entries beyond this total size (0 = unbounded)")
		maxAge     = fs.Duration("max-age", 0, "evict result entries older than this (0 = keep forever)")
		profMaxAge = fs.Duration("profile-max-age", 0, "evict profile and merged-profile entries older than this; they are exempt from -max-bytes (0 = keep forever)")
		gcInterval = fs.Duration("gc-interval", 10*time.Minute, "how often to run eviction when -max-bytes or -max-age is set")
		quiet      = fs.Bool("q", false, "suppress startup and gc logging")
		withQueue  = fs.Bool("queue", false, "also coordinate a build farm: serve the work-queue API")
		leaseTTL   = fs.Duration("lease-ttl", queue.DefaultTTL, "work-queue lease TTL; a worker silent this long forfeits its job (requires -queue)")
		logReqs    = fs.Bool("log-requests", false, "log one structured line per HTTP request")
		pprofOn    = fs.Bool("pprof", false, "serve /debug/pprof profiling endpoints")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "brstored:", err)
		return 1
	}
	if *dir == "" {
		return fail(errors.New("-dir is required"))
	}
	if *gcInterval <= 0 {
		return fail(fmt.Errorf("-gc-interval must be positive, got %v", *gcInterval))
	}
	if *leaseTTL <= 0 {
		return fail(fmt.Errorf("-lease-ttl must be positive, got %v", *leaseTTL))
	}
	if *leaseTTL != queue.DefaultTTL && !*withQueue {
		return fail(errors.New("-lease-ttl tunes the work queue; add -queue"))
	}
	st, err := store.Open(*dir)
	if err != nil {
		return fail(err)
	}
	srv := storenet.NewServer(st)
	logf := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(stderr, format, args...)
		}
	}
	if *withQueue {
		srv.AttachQueue(queue.New(*leaseTTL, 0))
		logf("brstored: work-queue coordinator enabled, lease TTL %v\n", *leaseTTL)
	}
	if *logReqs {
		// Explicitly requested, so it bypasses -q: request logs are the
		// point, not chatter.
		srv.LogRequests(func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format, args...)
		})
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	logf("brstored: serving %s on http://%s\n", st.Dir(), ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	// The GC loop runs only when some bound is set; the first pass is
	// immediate so a restart over an oversized pool trims it right away.
	gcDone := make(chan struct{})
	go func() {
		defer close(gcDone)
		if *maxBytes <= 0 && *maxAge <= 0 && *profMaxAge <= 0 {
			return
		}
		t := time.NewTicker(*gcInterval)
		defer t.Stop()
		for {
			res, err := srv.GCWith(store.GCPolicy{
				MaxAge:        *maxAge,
				MaxBytes:      *maxBytes,
				ProfileMaxAge: *profMaxAge,
			})
			if err != nil {
				logf("brstored: gc: %v\n", err)
			} else if res.Evicted > 0 {
				logf("brstored: gc evicted %d of %d entries, %d bytes kept\n",
					res.Evicted, res.Scanned, res.Bytes)
			}
			select {
			case <-t.C:
			case <-ctx.Done():
				return
			}
		}
	}()

	handler := srv.Handler()
	if *pprofOn {
		// The store/queue API keeps its own mux; pprof mounts beside it
		// so profiling a busy coordinator needs no second port.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", nhpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
		<-errc
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fail(err)
		}
	}
	<-gcDone
	logf("brstored: shut down\n")
	return 0
}
