package branchreorder

// One benchmark per table and figure of the paper's evaluation. The
// expensive part — compiling and measuring 17 workloads under three
// switch heuristic sets — happens once in a shared fixture (built on
// bench's parallel, memoizing engine); each benchmark then regenerates
// its experiment from the measurements and reports the headline number
// as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. cmd/brbench prints the same tables in
// full.

import (
	"strings"
	"sync"
	"testing"

	"branchreorder/internal/bench"
	"branchreorder/internal/core"
	"branchreorder/internal/interp"
	"branchreorder/internal/ir"
	"branchreorder/internal/lower"
	"branchreorder/internal/pipeline"
	"branchreorder/internal/predictor"
	"branchreorder/internal/sim"
	"branchreorder/internal/workload"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = bench.RunSuite(nil)
	})
	if suiteErr != nil {
		b.Fatalf("building suite: %v", suiteErr)
	}
	return suite
}

// avgPct extracts the suite-wide average instruction change for a set.
func avgPct(s *bench.Suite, set lower.HeuristicSet) float64 {
	var base, reord uint64
	for _, r := range s.Runs[set] {
		base += r.Base.Stats.Insts
		reord += r.Reord.Stats.Insts
	}
	return bench.PctChange(base, reord)
}

// BenchmarkTable3 regenerates the test-program roster (Table 3).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Table3()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4 regenerates the dynamic frequency measurements
// (Table 4), reporting the suite-wide instruction reduction per set.
func BenchmarkTable4(b *testing.B) {
	s := sharedSuite(b)
	for _, set := range bench.Sets() {
		set := set
		b.Run("Set"+set.String(), func(b *testing.B) {
			var text string
			for i := 0; i < b.N; i++ {
				text = s.Table4()
			}
			if !strings.Contains(text, "average") {
				b.Fatal("malformed table")
			}
			b.ReportMetric(avgPct(s, set), "insts_%delta")
		})
	}
}

// BenchmarkTable5 regenerates the (0,2)x2048 branch-prediction
// measurements (Table 5).
func BenchmarkTable5(b *testing.B) {
	s := sharedSuite(b)
	var text string
	for i := 0; i < b.N; i++ {
		text = s.Table5()
	}
	if !strings.Contains(text, "(0,2)") {
		b.Fatal("malformed table")
	}
	var m0, m1 uint64
	for _, r := range s.Runs[lower.SetII] {
		m0 += r.Base.Mispredicts["(0,2)x2048"]
		m1 += r.Reord.Mispredicts["(0,2)x2048"]
	}
	b.ReportMetric(bench.PctChange(m0, m1), "mispreds_%delta")
}

// BenchmarkTable6 regenerates the predictor sweep (Table 6).
func BenchmarkTable6(b *testing.B) {
	s := sharedSuite(b)
	var text string
	for i := 0; i < b.N; i++ {
		text = s.Table6()
	}
	if !strings.Contains(text, "2048") {
		b.Fatal("malformed table")
	}
}

// BenchmarkTable7 regenerates the modelled execution times (Table 7),
// reporting the Ultra's suite-wide cycle reduction.
func BenchmarkTable7(b *testing.B) {
	s := sharedSuite(b)
	var text string
	for i := 0; i < b.N; i++ {
		text = s.Table7()
	}
	if !strings.Contains(text, "Ultra") {
		b.Fatal("malformed table")
	}
	var c0, c1 uint64
	for _, r := range s.Runs[lower.SetII] {
		c0 += r.Base.Cycles["SPARC Ultra I"]
		c1 += r.Reord.Cycles["SPARC Ultra I"]
	}
	b.ReportMetric(bench.PctChange(c0, c1), "ultra_cycles_%delta")
}

// BenchmarkTable8 regenerates the static measurements (Table 8),
// reporting the suite-wide static code growth under Set I.
func BenchmarkTable8(b *testing.B) {
	s := sharedSuite(b)
	var text string
	for i := 0; i < b.N; i++ {
		text = s.Table8()
	}
	if !strings.Contains(text, "Seqs") {
		b.Fatal("malformed table")
	}
	var st0, st1 int64
	for _, r := range s.Runs[lower.SetI] {
		st0 += r.StaticBase
		st1 += r.StaticReord
	}
	b.ReportMetric(bench.PctChange(uint64(st0), uint64(st1)), "static_%delta")
}

// BenchmarkFigures regenerates the sequence-length histograms
// (Figures 11-13).
func BenchmarkFigures(b *testing.B) {
	s := sharedSuite(b)
	for _, n := range []int{11, 12, 13} {
		n := n
		b.Run(map[int]string{11: "Figure11_SetI", 12: "Figure12_SetII", 13: "Figure13_SetIII"}[n],
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					text, err := s.Figure(n)
					if err != nil || !strings.Contains(text, "Sequence Length") {
						b.Fatalf("figure %d: %v", n, err)
					}
				}
			})
	}
}

// The remaining benchmarks time the pipeline's phases themselves.

func wcSource(b *testing.B) workload.Workload {
	b.Helper()
	w, ok := workload.Named("wc")
	if !ok {
		b.Fatal("wc workload missing")
	}
	return w
}

// BenchmarkCompile times the front end plus conventional optimizer.
func BenchmarkCompile(b *testing.B) {
	w := wcSource(b)
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildReordered times the full two-pass scheme (compile,
// detect, train, reorder) on the wc workload.
func BenchmarkBuildReordered(b *testing.B) {
	w := wcSource(b)
	train := w.Train()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Build(w.Source, train, pipeline.Options{Switch: lower.SetI, Optimize: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild contrasts the monolithic pipeline with the staged one.
// cold builds from source every iteration — frontend, detection,
// training run, finalize. staged-warm builds through a warmed
// StageCache, so each iteration pays only the finalize stage; the gap
// between the two is the work the ablation grid and AutoBuild amortize
// across Transform variants.
func BenchmarkBuild(b *testing.B) {
	w := wcSource(b)
	train := w.Train()
	opts := pipeline.Options{Switch: lower.SetI, Optimize: true}
	b.Run("wc/cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.Build(w.Source, train, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wc/staged-warm", func(b *testing.B) {
		b.ReportAllocs()
		cache := pipeline.NewStageCache(0)
		if _, err := cache.Build(w.Source, train, opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Build(w.Source, train, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInterp times raw execution of optimized binaries on both
// engines: the flat-decoded fast engine (the measurement path, with its
// default superinstruction fusion and with fusion off) and the
// block-walking reference interpreter both are differentially tested
// against. sort is the suite's heaviest workload by dynamic instruction
// count (Table 4); wc is the classic light one.
func BenchmarkInterp(b *testing.B) {
	for _, name := range []string{"sort", "wc"} {
		w, ok := workload.Named(name)
		if !ok {
			b.Fatalf("%s workload missing", name)
		}
		front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true})
		if err != nil {
			b.Fatal(err)
		}
		input := w.Test()
		code, err := interp.Decode(front.Prog)
		if err != nil {
			b.Fatal(err)
		}
		unfused, err := interp.DecodeWith(front.Prog, interp.DecodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/fast", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			m := &interp.FastMachine{Code: code, Input: input}
			// Warm the machine's arenas (register window, frame stack,
			// data memory, output buffer) so their one-time growth does
			// not smear bytes/op over small b.N; steady state is
			// allocation-free.
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/fast-nofuse", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			m := &interp.FastMachine{Code: unfused, Input: input}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/closure", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			m := &interp.ClosureMachine{Code: code, Input: input}
			// The warm-up run also compiles the closure graph, so the
			// timed loop measures pure execution.
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/closure-nofuse", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			m := &interp.ClosureMachine{Code: unfused, Input: input}
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/reference", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				m := &interp.Machine{Prog: front.Prog, Input: input}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecode times the pre-decoding step the fast engine amortizes
// across runs.
func BenchmarkDecode(b *testing.B) {
	w := wcSource(b)
	front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := interp.Decode(front.Prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimWithPredictors times measurement with the full predictor
// battery attached (fast engine + vectorized bank, the sim.Run path).
func BenchmarkSimWithPredictors(b *testing.B) {
	w := wcSource(b)
	front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetI, Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	input := w.Test()
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(front.Prog, input, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nofuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunWith(front.Prog, input, nil, sim.Options{NoFuse: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The closure variant re-decodes and re-compiles per iteration (the
	// sim.Run path decodes fresh), so it times end-to-end measurement
	// including compilation — the honest comparison for one-shot runs.
	b.Run("closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunWith(front.Prog, input, nil, sim.Options{Engine: sim.EngineClosure}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPredictorBattery times observing one synthetic branch stream
// with the whole Table-6 battery: the single-pass Bank against the
// 14-Bimodal fan-out it replaced in sim.Run.
func BenchmarkPredictorBattery(b *testing.B) {
	const streamLen = 4096
	ids := make([]int, streamLen)
	taken := make([]bool, streamLen)
	r := uint64(12345)
	for i := range ids {
		r = r*6364136223846793005 + 1442695040888963407
		ids[i] = int(r>>33) % 200
		taken[i] = r>>62&1 == 0
	}
	b.Run("bank", func(b *testing.B) {
		bank := predictor.NewTable6Bank()
		for i := 0; i < b.N; i++ {
			bank.Observe(ids[i%streamLen], taken[i%streamLen])
		}
	})
	b.Run("bimodals", func(b *testing.B) {
		preds := sim.PredictorSweep()
		for i := 0; i < b.N; i++ {
			for _, p := range preds {
				p.Observe(ids[i%streamLen], taken[i%streamLen])
			}
		}
	})
}

// BenchmarkDetect times sequence detection over all workloads' optimized
// programs (detection mutates the program, so each iteration works on a
// fresh clone; the clone cost is part of what the second pass pays too).
func BenchmarkDetect(b *testing.B) {
	var progs []*ir.Program
	for _, w := range workload.All() {
		front, err := pipeline.Frontend(w.Source, pipeline.Options{Switch: lower.SetIII, Optimize: true})
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, front.Prog)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			core.Detect(ir.CloneProgram(p), 0)
		}
	}
}

// BenchmarkSelect times the Figure 8 ordering algorithm on synthetic
// sequences of growing length.
func BenchmarkSelect(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		arms := make([]core.Arm, n)
		for i := range arms {
			arms[i] = core.Arm{
				R:      core.Range{Lo: int64(10 * i), Hi: int64(10*i + 5)},
				Target: i % 3,
				P:      1 / float64(n),
				C:      2,
			}
		}
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Select(arms)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblation runs the design-choice ablation study (Section 7/8
// mechanisms and the Section 10 extension) on three representative
// workloads.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAblation(lower.SetIII, []string{"wc", "ctags", "cpp"})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("missing rows")
		}
	}
}
